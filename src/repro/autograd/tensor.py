"""Core ``Tensor`` type for reverse-mode automatic differentiation.

A :class:`Tensor` wraps a ``numpy.ndarray`` and, when ``requires_grad`` is
set, records the operation that produced it so that :meth:`Tensor.backward`
can propagate gradients to every leaf tensor in the graph.

The implementation is a dynamic ("define-by-run") graph: every op creates a
new ``Tensor`` whose ``_parents`` reference its inputs and whose
``_backward_fn`` computes the local vector-Jacobian product.  ``backward()``
topologically sorts the graph and accumulates gradients into ``.grad``.

Only the features needed by the reproduction are implemented, but they are
implemented carefully: full broadcasting support, float32 by default, and
in-place gradient accumulation so parameters shared between branches (as in
residual networks) receive correct sums.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_DEFAULT_DTYPE = np.float32


class _GradMode(threading.local):
    """Thread-local flag controlling whether ops record the graph."""

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record the autograd graph."""
    return _grad_mode.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Inside the block every operation behaves as a plain NumPy computation and
    the resulting tensors have ``requires_grad=False``.  Used by evaluation
    loops and by the quantization-scheme freezing code.
    """
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    # Explicit float64 ndarrays are preserved (gradient checking relies on
    # double precision); Python scalars/lists default to float32.
    keep_float64 = isinstance(value, np.ndarray) and value.dtype == np.float64
    array = np.asarray(value, dtype=dtype if dtype is not None else None)
    if array.dtype == np.float64 and dtype is None and not keep_float64:
        array = array.astype(_DEFAULT_DTYPE)
    return array


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Gradients flowing back through broadcast operations have the broadcasted
    shape; this sums the extra leading axes and the axes that were expanded
    from size one, undoing the broadcast.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """N-dimensional array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``.  Python floats/lists are
        converted to ``float32`` by default.
    requires_grad:
        When ``True`` the tensor participates in gradient computation and
        ``backward()`` will populate ``.grad``.
    name:
        Optional human-readable label used in error messages and debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_parents", "_backward_fn", "_op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        if self.data.dtype not in (np.float32, np.float64) and requires_grad:
            raise TypeError(
                f"Only floating point tensors can require gradients, got {self.data.dtype}"
            )
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self._parents: Tuple[Tensor, ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None
        self._op: str = "leaf"

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        from repro.autograd import ops

        return ops.transpose(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({self.data!r}{grad_flag}{label})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], Sequence[Optional[np.ndarray]]],
        op: str,
    ) -> "Tensor":
        """Create a non-leaf tensor produced by ``op``.

        ``backward_fn`` receives the upstream gradient and must return one
        gradient (or ``None``) per parent, already matching each parent's
        shape.
        """
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires_grad)
        if requires_grad:
            out._parents = parents
            out._backward_fn = backward_fn
            out._op = op
        return out

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def clone(self) -> "Tensor":
        """Return a copy of this tensor that participates in the graph."""
        from repro.autograd import ops

        return ops.identity(self)

    def copy_(self, value: ArrayLike) -> "Tensor":
        """In-place overwrite of ``data`` (does not track gradients)."""
        array = _as_array(value)
        self.data = np.array(np.broadcast_to(array, self.data.shape), dtype=self.data.dtype)
        return self

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (shared, not copied)."""
        return self.data

    def astype(self, dtype) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=False)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate gradients from this tensor to all graph leaves.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to ``1`` which is only valid for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("Called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only supported for scalars"
                )
            grad = np.ones_like(self.data)
        grad = _as_array(grad).astype(self.data.dtype, copy=False)
        grad = np.broadcast_to(grad, self.data.shape).copy()

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        adopted: set[int] = set()
        # ids of arrays this backward pass created itself (accumulation sums
        # and the seed grad).  Only those may be mutated in place; everything
        # else may be a view or an array an op handed to several parents.
        # Entries are dropped when their array leaves the ``grads`` dict so
        # a recycled id can never be mistaken for an owned buffer.
        owned: set[int] = {id(grad)}

        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            owned.discard(id(node_grad))
            if node.requires_grad and (node._backward_fn is None or node._is_leaf()):
                if node.grad is None:
                    # Adopt the array when we exclusively own it; views (e.g.
                    # read-only broadcast grads from reductions) and arrays a
                    # backward fn handed to several parents (add/sub return
                    # the incoming grad for both when shapes match) must be
                    # materialized so .grad buffers never alias.
                    if (
                        node_grad.base is None
                        and node_grad.flags.writeable
                        and id(node_grad) not in adopted
                    ):
                        node.grad = node_grad
                        adopted.add(id(node_grad))
                    else:
                        node.grad = np.array(node_grad)
                else:
                    node.grad = node.grad + node_grad
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                parent_grad = parent_grad.astype(parent.data.dtype, copy=False)
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = parent_grad
                elif (
                    id(existing) in owned
                    # 0-d results of `a + b` are immutable numpy scalars, not
                    # arrays: `+=` would silently rebind a local instead of
                    # accumulating into the stored buffer.
                    and isinstance(existing, np.ndarray)
                    and existing.dtype == parent_grad.dtype
                    and existing.shape == parent_grad.shape
                ):
                    # Accumulate into the engine-owned sum buffer instead of
                    # allocating a fresh array per contribution (residual
                    # networks route many branches into the same tensor).
                    existing += parent_grad
                else:
                    accumulated = existing + parent_grad
                    grads[id(parent)] = accumulated
                    owned.add(id(accumulated))

    def _is_leaf(self) -> bool:
        return self._backward_fn is None

    def _topological_order(self) -> list:
        """Return nodes reachable from ``self`` in reverse topological order.

        Iterative depth-first search; parents that do not require grad are
        pruned — they receive no gradient and have no backward function, so
        visiting them (and anything behind them) is wasted work.
        """
        visited: set[int] = set()
        order: list[Tensor] = []
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Operator overloads (thin wrappers over repro.autograd.ops)
    # ------------------------------------------------------------------
    def _ops(self):
        from repro.autograd import ops

        return ops

    def __add__(self, other: ArrayLike) -> "Tensor":
        return self._ops().add(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self._ops().add(other, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self._ops().sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ops().sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return self._ops().mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self._ops().mul(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self._ops().div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ops().div(other, self)

    def __neg__(self) -> "Tensor":
        return self._ops().neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return self._ops().pow(self, exponent)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self._ops().matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        return self._ops().getitem(self, index)

    # Comparison operators return plain (non-differentiable) tensors.
    def __gt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data > _as_array(other))

    def __ge__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data >= _as_array(other))

    def __lt__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data < _as_array(other))

    def __le__(self, other: ArrayLike) -> "Tensor":
        return Tensor(self.data <= _as_array(other))

    # Convenience reductions / shape ops.
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._ops().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._ops().mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._ops().max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return self._ops().min(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._ops().reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        return self._ops().transpose(self, axes)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self._ops().reshape(self, shape)

    def abs(self) -> "Tensor":
        return self._ops().abs(self)

    def exp(self) -> "Tensor":
        return self._ops().exp(self)

    def log(self) -> "Tensor":
        return self._ops().log(self)

    def sqrt(self) -> "Tensor":
        return self._ops().sqrt(self)

    def sigmoid(self) -> "Tensor":
        return self._ops().sigmoid(self)

    def tanh(self) -> "Tensor":
        return self._ops().tanh(self)

    def relu(self) -> "Tensor":
        return self._ops().relu(self)

    def clip(self, low: float, high: float) -> "Tensor":
        return self._ops().clip(self, low, high)


def ensure_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op for tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
