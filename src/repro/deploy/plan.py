"""Flat layer plans: compiling a model skeleton into fused NumPy steps.

The inference runtime does not execute ``Module.forward`` — that path builds
an autograd graph per op.  Instead the model structure is compiled *once*
into a flat list of :class:`Step` objects operating on plain ``np.ndarray``
activations:

* a convolution followed by batch normalization (and optionally ReLU)
  becomes **one** step: the zero-copy im2col gather, a single GEMM against
  the integer weight matrix, and a per-output-channel affine that folds the
  dequantization factor, the BN scale/shift and the conv bias — dequantized
  exactly once, in the output domain;
* a linear layer keeps its integer matrix and applies the per-feature
  output affine (dequantization, folded BN) to the GEMM output;
* a layer whose artifact record carries a frozen activation range
  (``act_bits < 32``) additionally *quantizes its input* onto the training
  grid — ``round(clip(x / r, 0, 1) * (2**a - 1))`` — so the GEMM runs
  integer weight codes against integer activation codes and the combined
  ``w_scale * a_scale`` dequantization folds into the same output affine
  (see :class:`ActQuantSpec`);
* residual blocks become one step holding the compiled main/shortcut
  sub-plans, so the top-level plan stays a flat sequence.

Architecture coverage is a registry keyed by module class name
(:func:`register_plan_handler`): the built-in handlers cover every model in
``repro.models`` (ResNet-CIFAR/-ImageNet, VGG, SimpleConvNet, TinyMLP) plus
generic ``Sequential`` chains of leaf layers.  Third-party architectures
register a handler instead of patching the compiler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.autograd.ops import im2col
from repro.deploy.artifact import QuantizedTensorRecord
from repro.nn.module import Module
from repro.quant.act_quant import RANGE_FLOOR
from repro.runtime.arena import BufferArena
from repro.runtime.intgemm import (
    KernelChoice,
    bitplane_gemm,
    bitplanes_from_payload,
    natural_int_dtype,
    pack_weight_bitplanes,
    select_kernel,
)
from repro.runtime.threadpool import parallel_gemm


class PlanError(ValueError):
    """Raised when a model cannot be compiled into a layer plan."""


class ActQuantSpec:
    """Frozen activation quantization of one layer input.

    Replays the eval-time forward of the training-side quantizers with the
    serialized clip range ``r``:

    * ``mode="observer"`` (:class:`~repro.quant.fake_quant.FakeQuantize`):
      ``codes = round(clip(x * (1/r), 0, 1) * levels)``,
    * ``mode="pact"`` (PACT): ``codes = round((clip(x, 0, r) / d) * levels)``
      with ``d = max(r, RANGE_FLOOR)`` — PACT's training forward clips to
      the *raw* learned alpha but divides by the floored one, and the two
      only coincide for ``r >= RANGE_FLOOR``.

    The modes otherwise differ only in whether the range is applied as a
    reciprocal multiply or a divide — matched operation-for-operation so
    serving stays on the exact rounding boundaries training saw.  Codes are
    integer-valued float32 in ``[0, levels]``; the dequantization factor
    ``d / levels`` (``scale``) is folded into the owning step's output
    affine, never applied per element.
    """

    __slots__ = ("bits", "mode", "range", "levels", "divisor", "scale")

    def __init__(self, bits: int, mode: str, range_: float) -> None:
        if not 1 <= bits < 32:
            raise PlanError(f"ActQuantSpec needs 1 <= bits < 32, got {bits}")
        if range_ <= 0.0:
            raise PlanError(f"ActQuantSpec needs a positive clip range, got {range_}")
        if mode not in ("observer", "pact"):
            raise PlanError(f"Unknown activation quantization mode {mode!r}")
        self.bits = bits
        self.mode = mode
        self.range = float(range_)
        self.levels = 2 ** bits - 1
        # Observer ranges arrive pre-floored from export (training floors
        # them before both the clip and the scale); PACT floors only the
        # divisor, keeping the raw alpha as the clip bound.
        self.divisor = max(self.range, RANGE_FLOOR) if mode == "pact" else self.range
        self.scale = self.divisor / float(self.levels)

    @classmethod
    def from_record(cls, record: QuantizedTensorRecord) -> Optional["ActQuantSpec"]:
        """The spec an artifact record implies; ``None`` for float activations."""
        if record.act_bits >= 32 or record.act_range is None:
            return None
        return cls(record.act_bits, record.act_mode, record.act_range)

    def quantize(self, x: np.ndarray, arena: BufferArena) -> np.ndarray:
        """Integer activation codes of ``x`` in an arena-backed scratch buffer.

        Ownership of the returned buffer transfers to the caller (release it
        back to ``arena`` once the GEMM gather has consumed it).  The buffer
        matches ``x``'s memory layout (``empty_like``), not just its shape:
        conv steps hand over transposed views of their output stores, and a
        layout-matched destination lets every ufunc pass iterate in memory
        order — quantizing into a C-contiguous buffer from such a view costs
        ~40% more on the strided traversal alone.
        """
        codes = arena.empty_like(x) if x.dtype == np.float32 else arena.empty(x.shape, np.float32)
        if self.mode == "pact":
            np.clip(x, 0.0, self.range, out=codes)
            codes /= self.divisor
        else:
            np.multiply(x, 1.0 / self.range, out=codes)
            np.clip(codes, 0.0, 1.0, out=codes)
        codes *= self.levels
        # rint == round(decimals=0) bit-for-bit (round dispatches to rint),
        # minus several microseconds of wrapper overhead per call — this runs
        # once per quantized layer per batch.
        np.rint(codes, out=codes)
        return codes

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to the float activation grid (``codes * r/levels``)."""
        return np.asarray(codes, dtype=np.float32) * np.float32(self.scale)

    def describe(self) -> str:
        return f"aq{self.bits}"


# ---------------------------------------------------------------------------
# GEMM kernels
# ---------------------------------------------------------------------------


class GemmKernel:
    """Executes one layer's GEMM into the step's float32 output.

    The kernel is chosen once at plan-compile time by
    :func:`repro.runtime.intgemm.select_kernel` from the layer's reduction
    length and code bit widths (``REPRO_INT_GEMM`` overrides the policy);
    steps only ever call :meth:`conv` / :meth:`linear`.  ``tag`` is the
    per-layer suffix the plan summary shows (``int8``/``int16``/``bp2``);
    float kernels keep their describe strings unchanged.
    """

    tag = "f32"
    is_float = True

    def conv(self, cols: np.ndarray, out: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    def linear(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class FloatGemmKernel(GemmKernel):
    """Float32 BLAS on the float operand matrix (the default path)."""

    def __init__(self, w_mat: np.ndarray) -> None:
        self.w_mat = w_mat
        self._w_t: Optional[np.ndarray] = None

    @property
    def w_t(self) -> np.ndarray:
        """Pre-transposed operand for linear steps (built on first use)."""
        if self._w_t is None:
            self._w_t = np.ascontiguousarray(self.w_mat.T)
        return self._w_t

    def conv(self, cols: np.ndarray, out: np.ndarray) -> None:
        parallel_gemm(self.w_mat, cols, out=out)

    def linear(self, x: np.ndarray) -> np.ndarray:
        return x @ self.w_t


class GroupedGemmKernel(GemmKernel):
    """Per-group float GEMMs for grouped/depthwise convolutions.

    ``im2col`` orders its rows with the input channel outermost, so group
    ``g``'s reduction rows form the contiguous block
    ``[g*rows_g, (g+1)*rows_g)`` of the column matrix and its output
    channels the contiguous block ``[g*cout_g, (g+1)*cout_g)`` of the
    output store — a grouped convolution is ``groups`` dense GEMMs into
    disjoint output row slices, no gather or copy required.  Each group
    GEMM is the identical BLAS call the float path makes, so the integer
    certification argument (products and partial sums below ``2**24`` are
    exact in float32) applies per group unchanged.
    """

    def __init__(self, w_mat: np.ndarray, groups: int) -> None:
        if w_mat.shape[0] % groups:
            raise PlanError(
                f"grouped kernel: {w_mat.shape[0]} output channels not divisible "
                f"by groups={groups}"
            )
        self.w_mat = w_mat
        self.groups = groups

    def conv(self, cols: np.ndarray, out: np.ndarray) -> None:
        if cols.shape[0] % self.groups:
            raise PlanError(
                f"grouped kernel: {cols.shape[0]} reduction rows not divisible "
                f"by groups={self.groups}"
            )
        rows_g = cols.shape[0] // self.groups
        cout_g = self.w_mat.shape[0] // self.groups
        for g in range(self.groups):
            parallel_gemm(
                self.w_mat[g * cout_g:(g + 1) * cout_g],
                cols[g * rows_g:(g + 1) * rows_g],
                out=out[g * cout_g:(g + 1) * cout_g],
            )

    def linear(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - conv only
        raise PlanError("GroupedGemmKernel only executes convolutions")


class DenseIntGemmKernel(FloatGemmKernel):
    """Dense integer GEMM with compile-time-certified accumulation.

    ``w_codes`` holds the weight codes at their natural integer dtype
    (int8/int16 — the compiled plan's stored representation).  The
    ``f32`` engine issues the *identical* BLAS call the float path would:
    with the layer's bound under 2**24 every product and partial sum is an
    integer exactly representable in float32, so the float pipeline **is**
    an exact int32-accumulating integer GEMM — integer semantics at full
    BLAS speed, and bitwise parity with the float32 eval graph by
    construction.  The ``f64``/``exact`` engines (int64-range accumulation
    for bounds past 2**24; reachable via ``REPRO_INT_GEMM=dense``) compute
    the true integer result where float32 would round — served logits then
    deviate from the float32-trained eval graph by design.
    """

    is_float = False

    def __init__(self, w_codes: np.ndarray, w_mat: np.ndarray, choice: KernelChoice) -> None:
        super().__init__(w_mat)
        self.w_codes = w_codes
        self.engine = choice.engine
        self.acc_dtype = choice.acc_dtype
        self.tag = choice.tag
        self._w_wide: Optional[np.ndarray] = None

    def _wide(self) -> np.ndarray:
        if self._w_wide is None:
            dtype = np.float64 if self.engine == "f64" else np.int64
            self._w_wide = self.w_codes.astype(dtype)
        return self._w_wide

    def conv(self, cols: np.ndarray, out: np.ndarray) -> None:
        if self.engine == "f32":
            parallel_gemm(self.w_mat, cols, out=out)
            return
        wide = self._wide()
        np.copyto(out, parallel_gemm(wide, cols.astype(wide.dtype)), casting="unsafe")

    def linear(self, x: np.ndarray) -> np.ndarray:
        if self.engine == "f32":
            return x @ self.w_t
        wide = self._wide()
        return parallel_gemm(x.astype(wide.dtype), wide.T).astype(np.float32)


class BitplaneGemmKernel(GemmKernel):
    """Popcount GEMM over packed bit planes (very low weight bits).

    The weight planes are sliced straight out of the artifact's packed
    payload when the record still carries it; activation codes are
    re-packed per call.  Results are exact integers — bitwise identical to
    the dense kernel — but the path only pays off where float BLAS is slow
    or absent (see the selection policy); it is reached via
    ``REPRO_INT_GEMM=bitplane``.
    """

    is_float = False

    def __init__(self, planes, a_bits: int, choice: KernelChoice) -> None:
        self.planes = planes
        self.a_bits = a_bits
        self.acc_dtype = choice.acc_dtype
        self.tag = choice.tag

    def conv(self, cols: np.ndarray, out: np.ndarray) -> None:
        codes = cols.astype(np.int32)
        np.copyto(out, bitplane_gemm(self.planes, codes, self.a_bits), casting="unsafe")

    def linear(self, x: np.ndarray) -> np.ndarray:
        codes = x.T.astype(np.int32)  # (K, batch) column-major view of the batch
        acc = bitplane_gemm(self.planes, codes, self.a_bits)
        return np.ascontiguousarray(acc.T).astype(np.float32)


def _record_kernel(
    record: QuantizedTensorRecord, w_mat: np.ndarray, act_quant: Optional[ActQuantSpec]
) -> GemmKernel:
    """Build the compile-time-selected GEMM kernel for one artifact record.

    The natural-dtype code matrix and the bit planes are memoized on the
    record (like the float operand), so every session cloned from one
    artifact shares a single copy per representation.
    """
    rows = w_mat.shape[0]
    q_flat = record.q.reshape(rows, -1)
    w_lo = int(q_flat.min()) if q_flat.size else 0
    w_hi = int(q_flat.max()) if q_flat.size else 0
    choice = select_kernel(
        k=w_mat.shape[1],
        w_lo=w_lo,
        w_hi=w_hi,
        a_bits=act_quant.bits if act_quant is not None else None,
        w_plane_bits=record.packed_bits or None,
    )
    if choice.kind == "dense":
        w_codes = getattr(record, "_w_codes_nat", None)
        if w_codes is None:
            w_codes = np.ascontiguousarray(q_flat.astype(natural_int_dtype(w_lo, w_hi)))
            w_codes.flags.writeable = False
            record._w_codes_nat = w_codes
        return DenseIntGemmKernel(w_codes, w_mat, choice)
    if choice.kind == "bitplane":
        planes = getattr(record, "_bitplanes", None)
        if planes is None:
            if record.packed is not None and record.packed.bits:
                planes = bitplanes_from_payload(
                    record.packed.data,
                    record.packed.bits,
                    record.packed.offset,
                    (rows, q_flat.shape[1]),
                )
            else:
                planes = pack_weight_bitplanes(q_flat)
            record._bitplanes = planes
        return BitplaneGemmKernel(planes, act_quant.bits, choice)
    return FloatGemmKernel(w_mat)


# ---------------------------------------------------------------------------
# Steps
# ---------------------------------------------------------------------------


class Step:
    """One fused operation of the plan: ``ndarray -> ndarray``."""

    name: str = "step"

    def __call__(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class ConvStep(Step):
    """Fused (act-quantize) → conv → (BN) → (ReLU): one GEMM plus an affine.

    ``w_mat`` holds the raw integer codes (as float32 for the GEMM);
    ``mult``/``shift`` are the folded output-domain affine:
    ``mult = dequant * gamma / sqrt(var + eps)`` and
    ``shift = (bias - mean) * gamma / sqrt(var + eps) + beta`` when a BN
    layer was folded, or plain dequantization and bias otherwise.  With an
    ``act_quant`` spec the input is first snapped to integer activation
    codes (arena scratch), the GEMM multiplies codes by codes, and the
    activation scale ``r / levels`` rides in ``mult`` alongside the weight
    dequantization — the caller folds it in when constructing the step.

    The im2col column matrix is drawn from (and released back to) the
    plan's shared :class:`~repro.runtime.arena.BufferArena`, so all conv
    steps of a plan cycle through one column buffer sized by the largest
    layer; the GEMM output lives in a grow-only store owned by the step
    (its lifetime crosses the step boundary — the next step reads it).
    Consequence: a step's output is only valid until its next call — plans
    are therefore not re-entrant, and
    :class:`~repro.deploy.session.InferenceSession.run` copies the final
    logits out.  The GEMM is sharded across the runtime thread pool when
    ``REPRO_NUM_THREADS`` allows.
    """

    def __init__(
        self,
        name: str,
        w_mat: np.ndarray,
        mult: np.ndarray,
        shift: Optional[np.ndarray],
        kernel_size: int,
        stride: int,
        padding: int,
        relu: bool = False,
        arena: Optional[BufferArena] = None,
        act_quant: Optional[ActQuantSpec] = None,
        kernel: Optional[GemmKernel] = None,
        groups: int = 1,
    ) -> None:
        self.name = name
        self.groups = groups
        self.w_mat = np.ascontiguousarray(w_mat, dtype=np.float32)
        if kernel is None:
            kernel = (
                GroupedGemmKernel(self.w_mat, groups)
                if groups > 1
                else FloatGemmKernel(self.w_mat)
            )
        self.kernel = kernel
        self.out_channels = self.w_mat.shape[0]
        self.mult = mult.astype(np.float32).reshape(-1, 1)
        self.shift = None if shift is None else shift.astype(np.float32).reshape(-1, 1)
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.relu = relu
        self.act_quant = act_quant
        self.arena = arena if arena is not None else BufferArena(f"plan:{name}")
        # Flat backing store sliced per call: a prefix slice of a flat
        # buffer reshapes to a contiguous (rows, columns) matrix, so varying
        # batch sizes (the Server coalesces 1..max_batch requests per
        # forward) reuse one grow-only allocation instead of re-allocating
        # per geometry.
        self._out_store = np.empty(0, dtype=np.float32)

    def fold_bn(self, gamma_invstd: np.ndarray, shift: np.ndarray) -> None:
        """Fold a following BatchNorm into this step's output affine."""
        base_shift = 0.0 if self.shift is None else self.shift.reshape(-1)
        new_shift = base_shift * gamma_invstd + shift
        self.mult = (self.mult.reshape(-1) * gamma_invstd).astype(np.float32).reshape(-1, 1)
        self.shift = new_shift.astype(np.float32).reshape(-1, 1)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k, stride = self.kernel_size, self.stride
        out_h = (height + 2 * self.padding - k) // stride + 1
        out_w = (width + 2 * self.padding - k) // stride + 1
        columns = batch * out_h * out_w
        if self._out_store.size < self.out_channels * columns:
            self._out_store = np.empty(self.out_channels * columns, dtype=np.float32)
        out = self._out_store[: self.out_channels * columns].reshape(self.out_channels, columns)
        # The column matrix (and, on the integer-activation path, the code
        # buffer) is pure scratch within this call: quantize, gather, GEMM,
        # release — every conv step of the plan shares the arena's blocks.
        if self.act_quant is not None:
            codes = self.act_quant.quantize(x, self.arena)
            cols = im2col(codes, k, k, stride, self.padding, self.arena)
            self.arena.release(codes)
        else:
            cols = im2col(x, k, k, stride, self.padding, self.arena)
        self.kernel.conv(cols, out)
        self.arena.release(cols)
        out *= self.mult
        if self.shift is not None:
            out += self.shift
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out.reshape(self.out_channels, batch, out_h, out_w).transpose(1, 0, 2, 3)

    def describe(self) -> str:
        tail = f"+{self.act_quant.describe()}" if self.act_quant is not None else ""
        if not self.kernel.is_float:
            tail += f"+{self.kernel.tag}"
        if self.groups > 1:
            tail += f"+g{self.groups}"
        tail += "+bn" if self.shift is not None else ""
        tail += "+relu" if self.relu else ""
        return f"conv[{self.name}]{tail}"


class LinearStep(Step):
    """Fused (act-quantize) → linear → (BN) → (ReLU): integer GEMM + affine.

    The weight matrix keeps its raw integer codes; dequantization (times the
    activation scale when the input is quantized) and a folded BatchNorm1d
    both live in the per-feature output affine, mirroring :class:`ConvStep` —
    the GEMM itself is always codes × codes on the integer-activation path.
    """

    def __init__(
        self,
        name: str,
        w_mat: np.ndarray,
        dequant: float,
        bias: Optional[np.ndarray],
        relu: bool = False,
        arena: Optional[BufferArena] = None,
        act_quant: Optional[ActQuantSpec] = None,
        kernel: Optional[GemmKernel] = None,
    ) -> None:
        self.name = name
        if kernel is None:
            kernel = FloatGemmKernel(np.ascontiguousarray(w_mat, dtype=np.float32))
        self.kernel = kernel
        #: Per-feature (or scalar) output multiplier; ``None`` skips the pass.
        self.mult: Optional[np.ndarray] = None if dequant == 1.0 else np.float32(dequant)
        self.bias = None if bias is None else bias.astype(np.float32)
        self.relu = relu
        self.act_quant = act_quant
        self.arena = arena if arena is not None else BufferArena(f"plan:{name}")
        self._folded_bn = False

    def fold_bn(self, gamma_invstd: np.ndarray, shift: np.ndarray) -> None:
        """Fold a following BatchNorm1d into the output affine."""
        base_mult = np.float32(1.0) if self.mult is None else self.mult
        self.mult = (base_mult * gamma_invstd).astype(np.float32)
        base_bias = 0.0 if self.bias is None else self.bias
        self.bias = (base_bias * gamma_invstd + shift).astype(np.float32)
        self._folded_bn = True

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.act_quant is not None:
            codes = self.act_quant.quantize(x, self.arena)
            out = self.kernel.linear(codes)
            self.arena.release(codes)
        else:
            out = self.kernel.linear(x)
        if self.mult is not None:
            out *= self.mult
        if self.bias is not None:
            out += self.bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        tail = f"+{self.act_quant.describe()}" if self.act_quant is not None else ""
        if not self.kernel.is_float:
            tail += f"+{self.kernel.tag}"
        tail += "+bn" if self._folded_bn else ""
        tail += "+relu" if self.relu else ""
        return f"linear[{self.name}]{tail}"


class AffineStep(Step):
    """Standalone per-channel affine (a BatchNorm with no conv to fold into)."""

    def __init__(self, name: str, mult: np.ndarray, shift: np.ndarray, ndim: int = 4) -> None:
        self.name = name
        shape = (1, -1, 1, 1) if ndim == 4 else (1, -1)
        self.mult = mult.astype(np.float32).reshape(shape)
        self.shift = shift.astype(np.float32).reshape(shape)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x * self.mult + self.shift

    def describe(self) -> str:
        return f"affine[{self.name}]"


class ReluStep(Step):
    name = "relu"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


class MaxPoolStep(Step):
    def __init__(self, kernel_size: int, stride: int, arena: Optional[BufferArena] = None) -> None:
        self.name = f"maxpool{kernel_size}s{stride}"
        self.kernel_size = kernel_size
        self.stride = stride
        self.arena = arena if arena is not None else BufferArena(f"plan:{self.name}")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        k, s = self.kernel_size, self.stride
        batch, channels, height, width = x.shape
        if k == s and height % k == 0 and width % k == 0:
            # Non-overlapping windows: a reshape and two reductions.
            view = x.reshape(batch, channels, height // k, k, width // k, k)
            return view.max(axis=5).max(axis=3)
        cols = im2col(
            np.ascontiguousarray(x).reshape(batch * channels, 1, height, width),
            k, k, s, 0, self.arena,
        )
        out_h = (height - k) // s + 1
        out_w = (width - k) // s + 1
        out = cols.max(axis=0).reshape(batch, channels, out_h, out_w)
        self.arena.release(cols)
        return out


class AvgPoolStep(Step):
    def __init__(self, kernel_size: int, stride: int, arena: Optional[BufferArena] = None) -> None:
        self.name = f"avgpool{kernel_size}s{stride}"
        self.kernel_size = kernel_size
        self.stride = stride
        self.arena = arena if arena is not None else BufferArena(f"plan:{self.name}")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        k, s = self.kernel_size, self.stride
        batch, channels, height, width = x.shape
        if k == s and height % k == 0 and width % k == 0:
            view = x.reshape(batch, channels, height // k, k, width // k, k)
            return view.mean(axis=(3, 5))
        cols = im2col(
            np.ascontiguousarray(x).reshape(batch * channels, 1, height, width),
            k, k, s, 0, self.arena,
        )
        out_h = (height - k) // s + 1
        out_w = (width - k) // s + 1
        out = cols.mean(axis=0).reshape(batch, channels, out_h, out_w)
        self.arena.release(cols)
        return out


class GlobalAvgPoolStep(Step):
    name = "global_avg_pool"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.mean(axis=(2, 3), keepdims=True)


class FlattenStep(Step):
    name = "flatten"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x).reshape(x.shape[0], -1)


class ResidualStep(Step):
    """A residual block: main path plus (possibly empty) shortcut path."""

    def __init__(self, name: str, main: List[Step], shortcut: List[Step], relu: bool = True) -> None:
        self.name = name
        self.main = main
        self.shortcut = shortcut
        self.relu = relu

    def __call__(self, x: np.ndarray) -> np.ndarray:
        identity = x
        out = x
        for step in self.main:
            out = step(out)
        for step in self.shortcut:
            identity = step(identity)
        out = out + identity
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    def describe(self) -> str:
        inner = ", ".join(s.describe() for s in self.main)
        return f"residual[{self.name}]({inner})"


class TokensStep(Step):
    """NCHW feature map → ``(N, T, C)`` token sequence (patch-embed output)."""

    name = "tokens"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        batch, channels = x.shape[0], x.shape[1]
        return np.ascontiguousarray(
            x.reshape(batch, channels, -1).transpose(0, 2, 1)
        )


class MeanTokensStep(Step):
    """``(N, T, D)`` token sequence → ``(N, D)`` mean-pooled features."""

    name = "mean_tokens"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.mean(axis=1)


class AttentionStep(Step):
    """One transformer block: single-head attention + MLP, residual adds.

    Holds six nested :class:`LinearStep` objects (q/k/v/proj and the two MLP
    linears), each compiled from its own artifact record — quantized weights
    and frozen activation ranges ride along per linear exactly as they do in
    a flat plan.  Every linear runs on the ``(N*T, D)`` flattening and the
    softmax replays :func:`repro.autograd.ops.softmax` operation for
    operation (shifted exponentials normalized by their sum), matching the
    eval graph's rounding behaviour.
    """

    def __init__(
        self,
        name: str,
        q: LinearStep,
        k: LinearStep,
        v: LinearStep,
        proj: LinearStep,
        fc1: LinearStep,
        fc2: LinearStep,
        scale: float,
    ) -> None:
        self.name = name
        self.q, self.k, self.v, self.proj = q, k, v, proj
        self.fc1, self.fc2 = fc1, fc2
        self.scale = scale
        #: Nested GEMM steps, walked by :func:`step_kernel_tags`.
        self.inner = [q, k, v, proj, fc1, fc2]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        batch, tokens, dim = x.shape
        flat = np.ascontiguousarray(x).reshape(batch * tokens, dim)
        q = self.q(flat).reshape(batch, tokens, dim)
        k = self.k(flat).reshape(batch, tokens, dim)
        v = self.v(flat).reshape(batch, tokens, dim)
        scores = (q @ k.transpose(0, 2, 1)) * self.scale
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp_scores = np.exp(shifted)
        attn = exp_scores / exp_scores.sum(axis=-1, keepdims=True)
        context = attn @ v
        context_flat = np.ascontiguousarray(context).reshape(batch * tokens, dim)
        out = x + self.proj(context_flat).reshape(batch, tokens, dim)
        flat = out.reshape(batch * tokens, dim)
        mlp = self.fc2(self.fc1(flat))
        return out + mlp.reshape(batch, tokens, dim)

    def describe(self) -> str:
        inner = ", ".join(s.describe() for s in self.inner)
        return f"attention[{self.name}]({inner})"


class TokenMixStep(Step):
    """Mixer token-mixing MLP: transpose sandwich around two linears."""

    def __init__(self, name: str, fc1: LinearStep, fc2: LinearStep) -> None:
        self.name = name
        self.fc1, self.fc2 = fc1, fc2
        self.inner = [fc1, fc2]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        batch, tokens, dim = x.shape
        mixed = np.ascontiguousarray(x.transpose(0, 2, 1)).reshape(batch * dim, tokens)
        mixed = self.fc2(self.fc1(mixed))
        return x + mixed.reshape(batch, dim, tokens).transpose(0, 2, 1)

    def describe(self) -> str:
        inner = ", ".join(s.describe() for s in self.inner)
        return f"token_mix[{self.name}]({inner})"


class ChannelMixStep(Step):
    """Mixer channel-mixing MLP on the ``(N*T, D)`` flattening."""

    def __init__(self, name: str, fc1: LinearStep, fc2: LinearStep) -> None:
        self.name = name
        self.fc1, self.fc2 = fc1, fc2
        self.inner = [fc1, fc2]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        batch, tokens, dim = x.shape
        flat = np.ascontiguousarray(x).reshape(batch * tokens, dim)
        out = self.fc2(self.fc1(flat))
        return x + out.reshape(batch, tokens, dim)

    def describe(self) -> str:
        inner = ", ".join(s.describe() for s in self.inner)
        return f"channel_mix[{self.name}]({inner})"


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


class PlanBuilder:
    """Accumulates steps while walking a module tree, fusing as it goes.

    ``float_activations=True`` compiles every layer with float activation
    semantics even when its record carries a frozen activation range — the
    explicit escape hatch :class:`~repro.deploy.session.InferenceSession`
    exposes; the default honors the ranges and emits integer-activation
    steps.
    """

    def __init__(
        self,
        weights: Dict[int, QuantizedTensorRecord],
        arena: Optional[BufferArena] = None,
        float_activations: bool = False,
    ) -> None:
        self.weights = weights
        self.arena = arena if arena is not None else BufferArena("plan")
        self.float_activations = float_activations
        self.steps: List[Step] = []

    # -- leaf emitters --------------------------------------------------
    def _conv_record(self, module: Module, name: str, groups: int = 1):
        record = self.weights.get(id(module))
        act_quant = None
        if record is not None and record.dequant_kind != "symmetric":
            # Affine (DoReFa) and palette (LQ-Nets) dequantization cannot
            # fold into the per-channel output multiplier — an offset or a
            # level table is not expressible as ``out * mult`` — so these
            # schemes run float GEMM on the dequantized weights.  Memoized
            # on the record like the code matrix below.
            w_mat = getattr(record, "_w_deq_f32", None)
            if w_mat is None:
                w_mat = np.ascontiguousarray(
                    record.dequantized_weight.reshape(record.q.shape[0], -1)
                )
                w_mat.flags.writeable = False
                record._w_deq_f32 = w_mat
            dequant = 1.0
            bias = record.bias
            if not self.float_activations:
                act_quant = ActQuantSpec.from_record(record)
            if act_quant is not None:
                # The GEMM input is activation codes; only the activation
                # dequantization remains to fold into the output multiplier.
                dequant = act_quant.scale
            kernel = GroupedGemmKernel(w_mat, groups) if groups > 1 else None
            return w_mat, dequant, bias, act_quant, kernel
        if record is not None:
            # Memoize the float GEMM matrix on the record: plan steps only
            # read it, so every session cloned from the same artifact (one
            # per server worker) shares one copy instead of re-materializing
            # the dequantized weights per worker.
            w_mat = getattr(record, "_w_mat_f32", None)
            if w_mat is None:
                w_mat = np.ascontiguousarray(
                    record.q.astype(np.float32).reshape(record.q.shape[0], -1)
                )
                w_mat.flags.writeable = False
                record._w_mat_f32 = w_mat
            dequant = record.dequant_factor
            bias = record.bias
            if not self.float_activations:
                act_quant = ActQuantSpec.from_record(record)
            if act_quant is not None:
                # The GEMM output is codes x codes: both the weight and the
                # activation dequantization fold into one output multiplier.
                dequant = dequant * act_quant.scale
            if groups > 1:
                # Grouped convs run per-group float BLAS; the integer-GEMM
                # selection policy only covers full-matrix kernels.
                kernel = GroupedGemmKernel(w_mat, groups)
            else:
                kernel = _record_kernel(record, w_mat, act_quant)
        else:
            weight = module.weight.data
            w_mat = weight.reshape(weight.shape[0], -1).astype(np.float32)
            dequant = 1.0
            bias = None if module.bias is None else module.bias.data
            kernel = GroupedGemmKernel(w_mat, groups) if groups > 1 else None
        return w_mat, dequant, bias, act_quant, kernel

    def conv(self, module: Module, name: str) -> None:
        groups = getattr(module, "groups", 1)
        w_mat, dequant, bias, act_quant, kernel = self._conv_record(module, name, groups=groups)
        out_channels = w_mat.shape[0]
        mult = np.full(out_channels, dequant, dtype=np.float32)
        shift = None if bias is None else bias.astype(np.float32)
        self.steps.append(
            ConvStep(
                name,
                w_mat,
                mult,
                shift,
                kernel_size=module.kernel_size,
                stride=module.stride,
                padding=module.padding,
                arena=self.arena,
                act_quant=act_quant,
                kernel=kernel,
                groups=groups,
            )
        )

    def linear_step(self, module: Module, name: str, relu: bool = False) -> LinearStep:
        """Build (but do not append) the LinearStep for one linear module.

        Composite steps — attention and mixer blocks — embed linears inside
        one fused step; this gives them record-resolved LinearSteps without
        touching the flat step stream.
        """
        # A quantized record's bias is authoritative — like the conv path,
        # never fall back to the skeleton module's (randomly initialized)
        # bias when the record says the layer has none.
        w_mat, dequant, bias, act_quant, kernel = self._conv_record(module, name)
        return LinearStep(
            name, w_mat, dequant, bias, relu=relu,
            arena=self.arena, act_quant=act_quant, kernel=kernel,
        )

    def linear(self, module: Module, name: str) -> None:
        self.steps.append(self.linear_step(module, name))

    def batch_norm(self, module: Module, name: str) -> None:
        invstd = 1.0 / np.sqrt(module.running_var.data + module.eps)
        gamma = module.weight.data if module.weight is not None else np.ones_like(invstd)
        beta = module.bias.data if module.bias is not None else np.zeros_like(invstd)
        gamma_invstd = (gamma * invstd).astype(np.float32)
        shift = (beta - module.running_mean.data * gamma_invstd).astype(np.float32)
        ndim = 2 if type(module).__name__ == "BatchNorm1d" else 4
        last = self.steps[-1] if self.steps else None
        if isinstance(last, (ConvStep, LinearStep)) and not last.relu:
            last.fold_bn(gamma_invstd, shift)
        else:
            self.steps.append(AffineStep(name, gamma_invstd, shift, ndim=ndim))

    def relu(self) -> None:
        last = self.steps[-1] if self.steps else None
        if isinstance(last, (ConvStep, LinearStep, ResidualStep)) and not last.relu:
            last.relu = True
        else:
            self.steps.append(ReluStep())

    # -- composition ----------------------------------------------------
    def subplan(self) -> "PlanBuilder":
        return PlanBuilder(
            self.weights, arena=self.arena, float_activations=self.float_activations
        )

    def compile(self, module: Module, name: str) -> None:
        """Dispatch one module (leaf or composite) into the step stream."""
        handler = _HANDLERS.get(type(module).__name__)
        if handler is not None:
            handler(self, module, name)
            return
        raise PlanError(
            f"No plan handler for module type {type(module).__name__!r} (at {name!r}); "
            f"register one with repro.deploy.plan.register_plan_handler"
        )


def _quantizes_every_input(step: Step) -> bool:
    """True when every path ``step`` routes its input through starts with an
    activation quantizer — i.e. the input is always re-clipped at zero."""
    if isinstance(step, (ConvStep, LinearStep)):
        return step.act_quant is not None
    if isinstance(step, ResidualStep):
        return (
            bool(step.main)
            and _quantizes_every_input(step.main[0])
            and bool(step.shortcut)
            and _quantizes_every_input(step.shortcut[0])
        )
    return False


def _elide_subsumed_relus(steps: List[Step]) -> List[Step]:
    """Drop ReLUs whose sole consumer re-clips at zero while quantizing.

    In a flat step list, step ``i``'s output feeds exactly step ``i + 1``.
    When that consumer quantizes its input, the quantizer's ``clip(·, 0, r)``
    maps every negative value to code 0 — exactly what a preceding ReLU
    would have produced — so the ReLU pass is bit-for-bit redundant and the
    integer-activation plan saves one full-tensor pass per such pair.  A
    residual consumer qualifies only when *both* its branches quantize (an
    identity shortcut would leak the un-rectified tensor into the add).
    """
    for step in steps:
        if isinstance(step, ResidualStep):
            step.main = _elide_subsumed_relus(step.main)
            step.shortcut = _elide_subsumed_relus(step.shortcut)
    out: List[Step] = []
    for index, step in enumerate(steps):
        successor = steps[index + 1] if index + 1 < len(steps) else None
        if successor is not None and _quantizes_every_input(successor):
            if isinstance(step, ReluStep):
                continue
            if isinstance(step, (ConvStep, LinearStep, ResidualStep)) and step.relu:
                step.relu = False
        out.append(step)
    return out


#: module class name -> handler(builder, module, qualified_name)
_HANDLERS: Dict[str, Callable[[PlanBuilder, Module, str], None]] = {}


def register_plan_handler(*class_names: str):
    """Register a plan compilation handler for the named module classes."""

    def decorator(handler: Callable[[PlanBuilder, Module, str], None]):
        for class_name in class_names:
            _HANDLERS[class_name] = handler
        return handler

    return decorator


def compile_plan(
    model: Module,
    weights: Dict[int, QuantizedTensorRecord],
    arena: Optional[BufferArena] = None,
    float_activations: bool = False,
) -> List[Step]:
    """Compile ``model`` (an eval-mode float skeleton) into a flat step list.

    ``weights`` maps ``id(module)`` of conv/linear modules to their artifact
    records; modules without a record fall back to their dense float weight.
    Records carrying a frozen activation range compile to integer-activation
    steps unless ``float_activations=True`` forces float semantics.
    All scratch-hungry steps share ``arena`` (one is created when omitted);
    callers running plans concurrently should pass per-plan arenas.
    """
    builder = PlanBuilder(weights, arena=arena, float_activations=float_activations)
    builder.compile(model, "")
    if not builder.steps:
        raise PlanError(f"Model {type(model).__name__} compiled to an empty plan")
    return _elide_subsumed_relus(builder.steps)


def plan_summary(steps: List[Step]) -> str:
    """One line per step — the deployment analogue of ``repr(model)``."""
    return "\n".join(step.describe() for step in steps)


def step_kernel_tags(step: Step) -> Dict[str, str]:
    """``layer name -> kernel tag`` for every GEMM kernel nested in ``step``.

    Tags are the compile-time kernel selections the plan summary shows
    (``f32``/``int8``/``int16``/``bp{bits}``); residual steps contribute
    their main and shortcut sub-plans.  The per-step profiler and the
    ``plan.step`` trace spans attach exactly this mapping, so a trace can
    be checked against :meth:`InferenceSession.summary` tag-for-tag.
    """
    tags: Dict[str, str] = {}

    def walk(steps: List[Step]) -> None:
        for inner in steps:
            kernel = getattr(inner, "kernel", None)
            if kernel is not None:
                tags[inner.name] = kernel.tag
            if hasattr(inner, "main"):
                walk(inner.main)
                walk(inner.shortcut)
            # Attention/mixer steps embed their GEMM sub-steps in ``inner``.
            walk(getattr(inner, "inner", []))

    walk([step])
    return tags


# ---------------------------------------------------------------------------
# Built-in handlers: leaves
# ---------------------------------------------------------------------------


def _child_name(prefix: str, child: str) -> str:
    return f"{prefix}.{child}" if prefix else child


@register_plan_handler("Conv2d")
def _handle_conv(builder: PlanBuilder, module: Module, name: str) -> None:
    builder.conv(module, name)


@register_plan_handler("Linear")
def _handle_linear(builder: PlanBuilder, module: Module, name: str) -> None:
    builder.linear(module, name)


@register_plan_handler("BatchNorm2d", "BatchNorm1d")
def _handle_bn(builder: PlanBuilder, module: Module, name: str) -> None:
    builder.batch_norm(module, name)


@register_plan_handler("ReLU")
def _handle_relu(builder: PlanBuilder, module: Module, name: str) -> None:
    builder.relu()


@register_plan_handler("MaxPool2d")
def _handle_maxpool(builder: PlanBuilder, module: Module, name: str) -> None:
    builder.steps.append(MaxPoolStep(module.kernel_size, module.stride, arena=builder.arena))


@register_plan_handler("AvgPool2d")
def _handle_avgpool(builder: PlanBuilder, module: Module, name: str) -> None:
    builder.steps.append(AvgPoolStep(module.kernel_size, module.stride, arena=builder.arena))


@register_plan_handler("AdaptiveAvgPool2d")
def _handle_adaptive_avgpool(builder: PlanBuilder, module: Module, name: str) -> None:
    builder.steps.append(GlobalAvgPoolStep())


@register_plan_handler("Flatten")
def _handle_flatten(builder: PlanBuilder, module: Module, name: str) -> None:
    builder.steps.append(FlattenStep())


@register_plan_handler("Identity", "Dropout")
def _handle_noop(builder: PlanBuilder, module: Module, name: str) -> None:
    # Dropout is identity at inference; Identity is identity everywhere.
    return


@register_plan_handler("Sequential", "ModuleList")
def _handle_sequential(builder: PlanBuilder, module: Module, name: str) -> None:
    for child_name, child in module.named_children():
        builder.compile(child, _child_name(name, child_name))


# ---------------------------------------------------------------------------
# Built-in handlers: composite blocks and model classes
# ---------------------------------------------------------------------------


def _compile_downsample(builder: PlanBuilder, block: Module, name: str) -> List[Step]:
    shortcut = builder.subplan()
    shortcut.compile(block.downsample, _child_name(name, "downsample"))
    return shortcut.steps


@register_plan_handler("BasicBlockCIFAR", "BasicBlock")
def _handle_basic_block(builder: PlanBuilder, block: Module, name: str) -> None:
    main = builder.subplan()
    main.conv(block.conv1, _child_name(name, "conv1"))
    main.batch_norm(block.bn1, _child_name(name, "bn1"))
    main.relu()
    main.conv(block.conv2, _child_name(name, "conv2"))
    main.batch_norm(block.bn2, _child_name(name, "bn2"))
    builder.steps.append(
        ResidualStep(name, main.steps, _compile_downsample(builder, block, name), relu=True)
    )


@register_plan_handler("Bottleneck")
def _handle_bottleneck(builder: PlanBuilder, block: Module, name: str) -> None:
    main = builder.subplan()
    main.conv(block.conv1, _child_name(name, "conv1"))
    main.batch_norm(block.bn1, _child_name(name, "bn1"))
    main.relu()
    main.conv(block.conv2, _child_name(name, "conv2"))
    main.batch_norm(block.bn2, _child_name(name, "bn2"))
    main.relu()
    main.conv(block.conv3, _child_name(name, "conv3"))
    main.batch_norm(block.bn3, _child_name(name, "bn3"))
    builder.steps.append(
        ResidualStep(name, main.steps, _compile_downsample(builder, block, name), relu=True)
    )


@register_plan_handler("ResNetCIFAR")
def _handle_resnet_cifar(builder: PlanBuilder, model: Module, name: str) -> None:
    builder.conv(model.conv1, _child_name(name, "conv1"))
    builder.batch_norm(model.bn1, _child_name(name, "bn1"))
    builder.relu()
    for stage in ("layer1", "layer2", "layer3"):
        builder.compile(getattr(model, stage), _child_name(name, stage))
    builder.steps.append(GlobalAvgPoolStep())
    builder.steps.append(FlattenStep())
    builder.linear(model.fc, _child_name(name, "fc"))


@register_plan_handler("ResNetImageNet")
def _handle_resnet_imagenet(builder: PlanBuilder, model: Module, name: str) -> None:
    builder.conv(model.conv1, _child_name(name, "conv1"))
    builder.batch_norm(model.bn1, _child_name(name, "bn1"))
    builder.relu()
    builder.compile(model.maxpool, _child_name(name, "maxpool"))
    for stage in ("layer1", "layer2", "layer3", "layer4"):
        builder.compile(getattr(model, stage), _child_name(name, stage))
    builder.steps.append(GlobalAvgPoolStep())
    builder.steps.append(FlattenStep())
    builder.linear(model.fc, _child_name(name, "fc"))


@register_plan_handler("VGG")
def _handle_vgg(builder: PlanBuilder, model: Module, name: str) -> None:
    builder.compile(model.features, _child_name(name, "features"))
    builder.steps.append(GlobalAvgPoolStep())
    builder.steps.append(FlattenStep())
    builder.linear(model.classifier, _child_name(name, "classifier"))


@register_plan_handler("SimpleConvNet")
def _handle_simple_convnet(builder: PlanBuilder, model: Module, name: str) -> None:
    builder.conv(model.conv1, _child_name(name, "conv1"))
    builder.batch_norm(model.bn1, _child_name(name, "bn1"))
    builder.relu()
    builder.conv(model.conv2, _child_name(name, "conv2"))
    builder.batch_norm(model.bn2, _child_name(name, "bn2"))
    builder.relu()
    builder.steps.append(GlobalAvgPoolStep())
    builder.steps.append(FlattenStep())
    builder.linear(model.fc, _child_name(name, "fc"))


@register_plan_handler("TinyMLP")
def _handle_tiny_mlp(builder: PlanBuilder, model: Module, name: str) -> None:
    builder.linear(model.fc1, _child_name(name, "fc1"))
    builder.relu()
    builder.linear(model.fc2, _child_name(name, "fc2"))


@register_plan_handler("DepthwiseSeparableBlock")
def _handle_dw_separable(builder: PlanBuilder, block: Module, name: str) -> None:
    builder.conv(block.dw, _child_name(name, "dw"))
    builder.batch_norm(block.bn1, _child_name(name, "bn1"))
    builder.relu()
    builder.conv(block.pw, _child_name(name, "pw"))
    builder.batch_norm(block.bn2, _child_name(name, "bn2"))
    builder.relu()


@register_plan_handler("MobileNetTiny")
def _handle_mobilenet_tiny(builder: PlanBuilder, model: Module, name: str) -> None:
    builder.conv(model.stem, _child_name(name, "stem"))
    builder.batch_norm(model.bn, _child_name(name, "bn"))
    builder.relu()
    builder.compile(model.blocks, _child_name(name, "blocks"))
    builder.steps.append(GlobalAvgPoolStep())
    builder.steps.append(FlattenStep())
    builder.linear(model.fc, _child_name(name, "fc"))


@register_plan_handler("AttentionBlock")
def _handle_attention_block(builder: PlanBuilder, block: Module, name: str) -> None:
    builder.steps.append(
        AttentionStep(
            name,
            q=builder.linear_step(block.q, _child_name(name, "q")),
            k=builder.linear_step(block.k, _child_name(name, "k")),
            v=builder.linear_step(block.v, _child_name(name, "v")),
            proj=builder.linear_step(block.proj, _child_name(name, "proj")),
            fc1=builder.linear_step(block.fc1, _child_name(name, "fc1"), relu=True),
            fc2=builder.linear_step(block.fc2, _child_name(name, "fc2")),
            scale=block.scale,
        )
    )


@register_plan_handler("MixerBlock")
def _handle_mixer_block(builder: PlanBuilder, block: Module, name: str) -> None:
    builder.steps.append(
        TokenMixStep(
            name,
            builder.linear_step(block.token_fc1, _child_name(name, "token_fc1"), relu=True),
            builder.linear_step(block.token_fc2, _child_name(name, "token_fc2")),
        )
    )
    builder.steps.append(
        ChannelMixStep(
            name,
            builder.linear_step(block.channel_fc1, _child_name(name, "channel_fc1"), relu=True),
            builder.linear_step(block.channel_fc2, _child_name(name, "channel_fc2")),
        )
    )


@register_plan_handler("TinyAttention", "TinyMixer")
def _handle_token_model(builder: PlanBuilder, model: Module, name: str) -> None:
    builder.conv(model.patch_embed, _child_name(name, "patch_embed"))
    builder.steps.append(TokensStep())
    builder.compile(model.blocks, _child_name(name, "blocks"))
    builder.steps.append(MeanTokensStep())
    builder.linear(model.head, _child_name(name, "head"))
