"""Deterministic frozen-model construction shared by tests, benches, smokes.

The deployment tests/benches need a frozen CSQ model with *known* mixed
per-layer precisions rather than trained ones; this helper sets the mask
parameters directly (low ``p`` bit planes selected, cycling through
``precisions``) and optionally randomizes BatchNorm running statistics so
BN folding is exercised with non-trivial values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.csq.convert import convert_to_csq, freeze_model
from repro.csq.precision import csq_layers
from repro.models import create_model
from repro.nn.module import Module


def frozen_mixed_model(
    arch: str,
    precisions: Sequence[int] = (2, 3, 4, 5, 8),
    seed: int = 1,
    act_bits: int = 32,
    randomize_bn: bool = True,
    **arch_kwargs,
) -> Module:
    """A frozen CSQ model with deterministic mixed per-layer precisions."""
    model = create_model(arch, **arch_kwargs)
    if randomize_bn:
        rng = np.random.default_rng(seed)
        for _, module in model.named_modules():
            if hasattr(module, "running_mean"):
                module.running_mean.data = (
                    0.3 * rng.standard_normal(module.running_mean.data.shape)
                ).astype(np.float32)
                module.running_var.data = (
                    np.abs(rng.standard_normal(module.running_var.data.shape)) + 0.5
                ).astype(np.float32)
    model, _ = convert_to_csq(model, num_bits=8, act_bits=act_bits)
    for index, (_, layer) in enumerate(csq_layers(model)):
        bits = precisions[index % len(precisions)]
        mask = np.full(layer.num_bits, -1.0, dtype=np.float32)
        mask[:bits] = 1.0
        layer.bitparam.m_b.data = mask
    freeze_model(model)
    return model
