"""Deterministic frozen-model construction shared by tests, benches, smokes.

The deployment tests/benches need a frozen CSQ model with *known* mixed
per-layer precisions rather than trained ones; this helper sets the mask
parameters directly (low ``p`` bit planes selected, cycling through
``precisions``) and optionally randomizes BatchNorm running statistics so
BN folding is exercised with non-trivial values.  For activation-quantized
models (``act_bits < 32``) it runs a few seeded calibration batches through
the observer path so every layer freezes a non-trivial per-layer clip range
(PACT mode needs none — the range is its ``alpha`` parameter).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.baselines.bsq import bsq_layers, convert_to_bsq
from repro.baselines.haq_like import greedy_precision_search
from repro.baselines.hawq import assign_precisions_by_sensitivity, hessian_sensitivities
from repro.baselines.uniform_qat import UniformQATConfig, convert_to_qat
from repro.csq.convert import convert_to_csq, freeze_model
from repro.csq.precision import csq_layers
from repro.deploy.export import KNOWN_SCHEMES, convert_to_ptq
from repro.models import create_model
from repro.nn.module import Module
from repro.quant.act_quant import calibrate_activations
from repro.quant.lqnets import LQNetsWeightQuantizer
from repro.quant.qconv import QConv2d
from repro.quant.qlinear import QLinear


def frozen_mixed_model(
    arch: str,
    precisions: Sequence[int] = (2, 3, 4, 5, 8),
    seed: int = 1,
    act_bits: int = 32,
    act_mode: str = "observer",
    randomize_bn: bool = True,
    calibration_shape: Optional[Tuple[int, ...]] = None,
    calibration_batches: int = 3,
    **arch_kwargs,
) -> Module:
    """A frozen CSQ model with deterministic mixed per-layer precisions.

    ``calibration_shape`` is the full batch shape (e.g. ``(4, 3, 12, 12)``)
    of the seeded standard-normal batches fed through the activation
    observers when ``act_bits < 32`` in observer mode; without it those
    observers keep their default ``(0, 1)`` range, which still serves but
    exercises only a trivial grid.
    """
    model = create_model(arch, **arch_kwargs)
    if randomize_bn:
        rng = np.random.default_rng(seed)
        for _, module in model.named_modules():
            if hasattr(module, "running_mean"):
                module.running_mean.data = (
                    0.3 * rng.standard_normal(module.running_mean.data.shape)
                ).astype(np.float32)
                module.running_var.data = (
                    np.abs(rng.standard_normal(module.running_var.data.shape)) + 0.5
                ).astype(np.float32)
    model, _ = convert_to_csq(model, num_bits=8, act_bits=act_bits, act_mode=act_mode)
    for index, (_, layer) in enumerate(csq_layers(model)):
        bits = precisions[index % len(precisions)]
        mask = np.full(layer.num_bits, -1.0, dtype=np.float32)
        mask[:bits] = 1.0
        layer.bitparam.m_b.data = mask
    if act_bits < 32 and act_mode == "observer" and calibration_shape is not None:
        model.eval()  # calibration must not disturb the BN running statistics
        rng = np.random.default_rng(seed + 1)
        calibrate_activations(
            model,
            (
                rng.standard_normal(calibration_shape).astype(np.float32)
                for _ in range(calibration_batches)
            ),
        )
    freeze_model(model)
    return model


def frozen_scheme_model(
    scheme: str,
    arch: str,
    seed: int = 1,
    act_bits: int = 32,
    weight_bits: int = 4,
    calibration_shape: Optional[Tuple[int, ...]] = None,
    calibration_batches: int = 3,
    **arch_kwargs,
) -> Module:
    """A deterministic frozen model quantized with any supported scheme.

    The cross-scheme conformance tests serve every ``(scheme, arch)`` cell
    through the deployment stack and pin parity against the frozen eval
    graph this helper returns.  Per scheme:

    * ``csq`` — :func:`frozen_mixed_model` (deterministic mixed precisions),
    * ``bsq`` — ``convert_to_bsq`` with the top bit plane pruned on every
      other layer, so the stored mask is non-trivial,
    * ``uniform_qat`` / ``dorefa`` / ``lqnets`` — ``convert_to_qat`` with
      the matching method (LQ-Nets bases are QEM-fitted eagerly so repeated
      reference evaluations reuse one frozen level table),
    * ``haq_like`` / ``hawq`` — the scheme's precision search on seeded
      synthetic data, applied with :func:`repro.deploy.export.convert_to_ptq`
      (these require ``calibration_shape``).

    ``calibration_shape`` additionally drives seeded observer calibration
    whenever ``act_bits < 32``, exactly as in :func:`frozen_mixed_model`.
    The returned model is in eval mode.
    """
    if scheme == "csq":
        model = frozen_mixed_model(
            arch,
            seed=seed,
            act_bits=act_bits,
            calibration_shape=calibration_shape,
            calibration_batches=calibration_batches,
            **arch_kwargs,
        )
        model.eval()
        return model
    if scheme not in KNOWN_SCHEMES:
        raise ValueError(f"Unknown scheme {scheme!r}; known schemes: {KNOWN_SCHEMES}")
    np.random.seed(seed)  # layer init draws from the global generator
    model = create_model(arch, **arch_kwargs)
    rng = np.random.default_rng(seed + 1)
    if scheme == "bsq":
        convert_to_bsq(model, num_bits=weight_bits, act_bits=act_bits)
        for index, (_, layer) in enumerate(bsq_layers(model)):
            if index % 2 == 1 and layer.num_bits > 1:
                mask = layer.bit_mask.data.copy()
                mask[-1] = 0.0
                layer.bit_mask.data = mask
    elif scheme in ("uniform_qat", "dorefa", "lqnets"):
        method = "ste" if scheme == "uniform_qat" else scheme
        convert_to_qat(
            model,
            UniformQATConfig(weight_bits=weight_bits, act_bits=act_bits, method=method),
        )
    else:  # haq_like / hawq: run the scheme's search on seeded data
        if calibration_shape is None:
            raise ValueError(f"{scheme!r} needs calibration_shape for its precision search")
        images = rng.standard_normal(calibration_shape).astype(np.float32)
        num_classes = int(arch_kwargs.get("num_classes", 10))
        labels = rng.integers(0, num_classes, size=calibration_shape[0]).astype(np.int64)
        if scheme == "haq_like":
            assignment = greedy_precision_search(
                model, images, labels, target_average_bits=float(weight_bits)
            )
        else:
            sensitivities = hessian_sensitivities(model, images, labels, num_probes=2, seed=seed)
            layer_sizes = {
                name: int(module.weight.data.size)
                for name, module in model.named_modules()
                if name in sensitivities
            }
            assignment = assign_precisions_by_sensitivity(
                sensitivities, layer_sizes, target_average_bits=float(weight_bits)
            )
        convert_to_ptq(model, assignment, act_bits=act_bits, scheme=scheme)
    model.eval()
    # Fit LQ-Nets bases now: quantize_array on a fresh quantizer runs the
    # deterministic QEM fit, after which export and every reference eval
    # share one frozen level table.
    for _, module in model.named_modules():
        if isinstance(module, (QConv2d, QLinear)) and isinstance(
            module.weight_quantizer, LQNetsWeightQuantizer
        ):
            module.weight_quantizer.quantize_array(module.weight.data)
    if act_bits < 32 and calibration_shape is not None:
        calibrate_activations(
            model,
            (
                rng.standard_normal(calibration_shape).astype(np.float32)
                for _ in range(calibration_batches)
            ),
        )
    return model
