"""Deterministic frozen-model construction shared by tests, benches, smokes.

The deployment tests/benches need a frozen CSQ model with *known* mixed
per-layer precisions rather than trained ones; this helper sets the mask
parameters directly (low ``p`` bit planes selected, cycling through
``precisions``) and optionally randomizes BatchNorm running statistics so
BN folding is exercised with non-trivial values.  For activation-quantized
models (``act_bits < 32``) it runs a few seeded calibration batches through
the observer path so every layer freezes a non-trivial per-layer clip range
(PACT mode needs none — the range is its ``alpha`` parameter).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.csq.convert import convert_to_csq, freeze_model
from repro.csq.precision import csq_layers
from repro.models import create_model
from repro.nn.module import Module
from repro.quant.act_quant import calibrate_activations


def frozen_mixed_model(
    arch: str,
    precisions: Sequence[int] = (2, 3, 4, 5, 8),
    seed: int = 1,
    act_bits: int = 32,
    act_mode: str = "observer",
    randomize_bn: bool = True,
    calibration_shape: Optional[Tuple[int, ...]] = None,
    calibration_batches: int = 3,
    **arch_kwargs,
) -> Module:
    """A frozen CSQ model with deterministic mixed per-layer precisions.

    ``calibration_shape`` is the full batch shape (e.g. ``(4, 3, 12, 12)``)
    of the seeded standard-normal batches fed through the activation
    observers when ``act_bits < 32`` in observer mode; without it those
    observers keep their default ``(0, 1)`` range, which still serves but
    exercises only a trivial grid.
    """
    model = create_model(arch, **arch_kwargs)
    if randomize_bn:
        rng = np.random.default_rng(seed)
        for _, module in model.named_modules():
            if hasattr(module, "running_mean"):
                module.running_mean.data = (
                    0.3 * rng.standard_normal(module.running_mean.data.shape)
                ).astype(np.float32)
                module.running_var.data = (
                    np.abs(rng.standard_normal(module.running_var.data.shape)) + 0.5
                ).astype(np.float32)
    model, _ = convert_to_csq(model, num_bits=8, act_bits=act_bits, act_mode=act_mode)
    for index, (_, layer) in enumerate(csq_layers(model)):
        bits = precisions[index % len(precisions)]
        mask = np.full(layer.num_bits, -1.0, dtype=np.float32)
        mask[:bits] = 1.0
        layer.bitparam.m_b.data = mask
    if act_bits < 32 and act_mode == "observer" and calibration_shape is not None:
        model.eval()  # calibration must not disturb the BN running statistics
        rng = np.random.default_rng(seed + 1)
        calibrate_activations(
            model,
            (
                rng.standard_normal(calibration_shape).astype(np.float32)
                for _ in range(calibration_batches)
            ),
        )
    freeze_model(model)
    return model
