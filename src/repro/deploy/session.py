"""Autograd-free integer inference runtime.

An :class:`InferenceSession` owns a loaded artifact and a compiled flat
layer plan (see :mod:`repro.deploy.plan`).  ``run`` takes an NCHW (or NF)
float32 batch and returns logits; nothing on the hot path allocates a
``Tensor``, records a graph node, or touches the training stack — the only
per-layer work is the im2col gather, one GEMM against the integer weight
matrix, and the folded output affine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.deploy.artifact import Artifact, ArtifactError, load_artifact
from repro.deploy.plan import Step, compile_plan, plan_summary
from repro.runtime.arena import BufferArena


class InferenceSession:
    """Executes a deployment artifact in the integer domain.

    Parameters
    ----------
    artifact:
        An :class:`~repro.deploy.artifact.Artifact` or a path to one.
        Codes are unpacked and the plan compiled once, here; ``run`` is
        pure NumPy afterwards.

    float_activations:
        The runtime executes activations in float32; a model trained with
        ``act_bits < 32`` would therefore serve (slightly) different
        numbers than the frozen CSQ model it was validated as.  Loading
        such an artifact raises unless ``float_activations=True``
        explicitly accepts that divergence.  (Integer activation support is
        a ROADMAP item; the manifest already carries ``act_bits``.)

    ``run`` is **not re-entrant**: conv steps reuse GEMM output buffers
    across calls, so a session must not execute two batches concurrently.
    The :class:`~repro.deploy.server.Server` serializes each worker's
    requests through its own session — pass ``workers=N`` there (it calls
    :meth:`clone` per extra worker) for thread-parallel serving.  Each
    session owns a private :class:`~repro.runtime.arena.BufferArena` its
    plan steps draw scratch from, so concurrent sessions never contend.
    """

    def __init__(
        self, artifact: Union[Artifact, str], float_activations: bool = False
    ) -> None:
        if not isinstance(artifact, Artifact):
            artifact = load_artifact(artifact)
        self.artifact = artifact
        self._float_activations = float_activations
        quantized_acts = sorted(
            name for name, rec in artifact.quantized.items() if rec.act_bits < 32
        )
        if quantized_acts and not float_activations:
            raise ArtifactError(
                f"Artifact layers {quantized_acts} were trained with quantized "
                f"activations (act_bits < 32), which this runtime executes in "
                f"float32 — served outputs would differ from the validated "
                f"model.  Pass float_activations=True to accept that."
            )
        # The skeleton provides structure and the BatchNorm constants the
        # plan folds; its (dequantized) weights are not used on the hot path.
        skeleton = artifact.build_model()
        weights = {}
        modules = dict(skeleton.named_modules())
        for name, record in artifact.quantized.items():
            weights[id(modules[name])] = record
        self.arena = BufferArena("session")
        self.plan: List[Step] = compile_plan(skeleton, weights, arena=self.arena)
        self._calls = 0
        self._examples = 0

    def clone(self) -> "InferenceSession":
        """An independent session over the same (already unpacked) artifact.

        Clones share the artifact's weight records but own their plan,
        buffers and arena, so they can run batches concurrently with the
        original — the unit of parallelism for multi-worker serving.
        """
        return InferenceSession(self.artifact, float_activations=self._float_activations)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def arch(self) -> str:
        return self.artifact.arch

    @property
    def precision_map(self) -> Dict[str, int]:
        return self.artifact.precision_map

    def summary(self) -> str:
        header = (
            f"InferenceSession(arch={self.arch!r}, "
            f"avg_precision={self.artifact.scheme().average_precision:.2f}, "
            f"steps={len(self.plan)})"
        )
        return header + "\n" + plan_summary(self.plan)

    @property
    def stats(self) -> Dict[str, int]:
        return {"calls": self._calls, "examples": self._examples}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """Run the plan over a batch; returns the logits as float32."""
        out = np.ascontiguousarray(x, dtype=np.float32)
        batch = out.shape[0]
        for step in self.plan:
            out = step(out)
        self._calls += 1
        self._examples += batch
        # The caller must own the result: a plan ending in a ConvStep hands
        # back a view of that step's reused buffer (which the next run()
        # overwrites), and such a view can be contiguous — copy whenever the
        # final array does not own its data.
        if out.base is not None or not out.flags["OWNDATA"]:
            out = out.copy()
        return np.ascontiguousarray(out)

    __call__ = run

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over logits) for a batch."""
        return self.run(x).argmax(axis=-1)

    def evaluate(self, loader: Iterable[Tuple[np.ndarray, np.ndarray]]) -> Dict[str, float]:
        """Accuracy over an iterable of ``(images, labels)`` batches."""
        correct = 0
        total = 0
        for images, labels in loader:
            prediction = self.predict(np.asarray(images))
            correct += int((prediction == np.asarray(labels)).sum())
            total += len(labels)
        return {"accuracy": correct / total if total else float("nan")}
