"""Autograd-free integer inference runtime.

An :class:`InferenceSession` owns a loaded artifact and a compiled flat
layer plan (see :mod:`repro.deploy.plan`).  ``run`` takes an NCHW (or NF)
float32 batch and returns logits; nothing on the hot path allocates a
``Tensor``, records a graph node, or touches the training stack — the only
per-layer work is (for activation-quantized layers) the snap of the input
onto its integer grid, the im2col gather, one GEMM against the integer
weight matrix, and the folded output affine.

Artifacts whose manifest carries frozen activation clip ranges
(``act_bits < 32``, format version >= 2) compile to the integer-activation
plan automatically: each quantized layer replays the exact training-time
grid ``round(clip(x / r, 0, 1) * (2**a - 1))``, so serving matches the
frozen CSQ model the artifact was validated as — no opt-in needed.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.deploy.artifact import Artifact, ArtifactError, load_artifact
from repro.deploy.plan import Step, compile_plan, plan_summary, step_kernel_tags
from repro.runtime.arena import BufferArena


class InferenceSession:
    """Executes a deployment artifact in the integer domain.

    Parameters
    ----------
    artifact:
        An :class:`~repro.deploy.artifact.Artifact` or a path to one.
        Codes are unpacked and the plan compiled once, here; ``run`` is
        pure NumPy afterwards.

    float_activations:
        Explicit override: compile the plan with float32 activations even
        when the artifact carries frozen activation ranges.  Served numbers
        then diverge from the validated ``act_bits < 32`` model (activations
        skip their quantization grid), which is occasionally useful to
        isolate how much accuracy the activation grid costs — never the
        default.  The flag is also the only way to load a *version-1*
        artifact of an activation-quantized model: those manifests predate
        the range fields, the grid cannot be reconstructed, and loading one
        without the override raises (re-export the model for faithful
        integer-activation serving).

    profile:
        Opt-in per-step profiler (also :meth:`set_profiling`): ``run``
        times every plan step — wall time plus the compile-time GEMM
        kernel tags — into :attr:`last_profile`, and records ``plan.step``
        trace spans when telemetry is on.  Off by default; the unprofiled
        ``run`` path is unchanged.

    ``run`` is **not re-entrant**: conv steps reuse GEMM output buffers
    across calls, so a session must not execute two batches concurrently.
    The :class:`~repro.deploy.server.Server` serializes each worker's
    requests through its own session — pass ``workers=N`` there (it calls
    :meth:`clone` per extra worker) for thread-parallel serving.  Each
    session owns a private :class:`~repro.runtime.arena.BufferArena` its
    plan steps draw scratch from, so concurrent sessions never contend.
    """

    def __init__(
        self,
        artifact: Union[Artifact, str],
        float_activations: bool = False,
        profile: bool = False,
    ) -> None:
        if not isinstance(artifact, Artifact):
            artifact = load_artifact(artifact)
        self.artifact = artifact
        self._float_activations = float_activations
        # Ranged layers serve on their integer activation grid; rangeless
        # act_bits < 32 layers (version-1 manifests) cannot.
        rangeless = sorted(
            name
            for name, rec in artifact.quantized.items()
            if rec.act_bits < 32 and rec.act_range is None
        )
        if rangeless and not float_activations:
            raise ArtifactError(
                f"Artifact layers {rangeless} were trained with quantized "
                f"activations (act_bits < 32) but carry no frozen clip range — "
                f"a format-version-1 manifest predating the activation-range "
                f"fields — so the training-time activation grid cannot be "
                f"replayed and served outputs would differ from the validated "
                f"model.  Re-export the model to a current artifact for "
                f"faithful integer-activation serving, or pass "
                f"float_activations=True to explicitly accept float32 "
                f"activation semantics."
            )
        # The skeleton provides structure and the BatchNorm constants the
        # plan folds; its (dequantized) weights are not used on the hot path.
        skeleton = artifact.build_model()
        weights = {}
        modules = dict(skeleton.named_modules())
        for name, record in artifact.quantized.items():
            weights[id(modules[name])] = record
        self.arena = BufferArena("session")
        self.plan: List[Step] = compile_plan(
            skeleton, weights, arena=self.arena, float_activations=float_activations
        )
        self._calls = 0
        self._examples = 0
        # Best-effort re-entrance tripwire (run() reuses GEMM buffers, so
        # two concurrent batches on one session corrupt each other): a plain
        # flag, cheap enough for the hot path, catching the common misuse of
        # sharing one session across threads instead of clone()-per-worker.
        self._in_flight = False
        #: Opt-in per-step profiler (see :meth:`set_profiling`): when on,
        #: ``run`` times every plan step and keeps the result in
        #: :attr:`last_profile`; with telemetry enabled it additionally
        #: records one ``plan.step`` trace span per step.
        self.profile_enabled = bool(profile)
        self.last_profile: Optional[List[Dict[str, object]]] = None

    def clone(self) -> "InferenceSession":
        """An independent session over the same (already unpacked) artifact.

        Clones share the artifact's weight records but own their plan,
        buffers and arena, so they can run batches concurrently with the
        original — the unit of parallelism for multi-worker serving.
        """
        return InferenceSession(
            self.artifact,
            float_activations=self._float_activations,
            profile=self.profile_enabled,
        )

    def set_profiling(self, enabled: bool = True) -> None:
        """Toggle the per-step profiler.

        Off (the default) keeps ``run`` on its unchanged hot path; on, each
        plan step is individually timed — wall time plus the compile-time
        kernel tags from :func:`~repro.deploy.plan.step_kernel_tags` — into
        :attr:`last_profile`, and ``plan.step`` spans are emitted when
        telemetry is enabled (``REPRO_TELEMETRY=1``).
        """
        self.profile_enabled = bool(enabled)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def arch(self) -> str:
        return self.artifact.arch

    @property
    def scheme_id(self) -> str:
        return self.artifact.scheme_id

    @property
    def precision_map(self) -> Dict[str, int]:
        return self.artifact.precision_map

    @property
    def activation_mode(self) -> str:
        """``"integer"`` when any plan step quantizes its input, else ``"float"``."""

        def quantizes(steps) -> bool:
            for step in steps:
                if getattr(step, "act_quant", None) is not None:
                    return True
                if hasattr(step, "main") and (
                    quantizes(step.main) or quantizes(step.shortcut)
                ):
                    return True
            return False

        return "integer" if quantizes(self.plan) else "float"

    @property
    def gemm_kernels(self) -> Dict[str, str]:
        """``layer name -> kernel tag`` for every GEMM step of the plan.

        Tags come from the compile-time kernel selection
        (:func:`repro.runtime.intgemm.select_kernel`): ``f32`` for the float
        path, ``int8``/``int16`` for the dense integer kernel, ``bp{bits}``
        for the bit-plane popcount kernel.  The same tags appear per layer
        in :meth:`summary` (e.g. ``conv[conv1]+aq4+int8+bn+relu``).
        """

        kernels: Dict[str, str] = {}
        for step in self.plan:
            kernels.update(step_kernel_tags(step))
        return kernels

    def summary(self) -> str:
        tags = sorted(set(self.gemm_kernels.values()))
        header = (
            f"InferenceSession(arch={self.arch!r}, scheme={self.scheme_id!r}, "
            f"avg_precision={self.artifact.scheme().average_precision:.2f}, "
            f"steps={len(self.plan)}, activations={self.activation_mode}, "
            f"gemm={'/'.join(tags) if tags else 'none'})"
        )
        return header + "\n" + plan_summary(self.plan)

    @property
    def stats(self) -> Dict[str, int]:
        return {"calls": self._calls, "examples": self._examples}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """Run the plan over a batch; returns the logits as float32."""
        out = np.ascontiguousarray(x, dtype=np.float32)
        batch = out.shape[0]
        if self._in_flight:
            raise RuntimeError(
                "InferenceSession.run is not re-entrant: this session is "
                "already executing a batch (its plan steps reuse GEMM "
                "buffers).  Use clone() to get an independent session per "
                "thread — Server(workers=N) does this for you."
            )
        self._in_flight = True
        try:
            if self.profile_enabled:
                out = self._run_steps_profiled(out, batch)
            else:
                for step in self.plan:
                    out = step(out)
        finally:
            self._in_flight = False
        self._calls += 1
        self._examples += batch
        # The caller must own the result: a plan ending in a ConvStep hands
        # back a view of that step's reused buffer (which the next run()
        # overwrites), and such a view can be contiguous — copy whenever the
        # final array does not own its data.
        if out.base is not None or not out.flags["OWNDATA"]:
            out = out.copy()
        return np.ascontiguousarray(out)

    def _run_steps_profiled(self, out: np.ndarray, batch: int) -> np.ndarray:
        """The profiled step loop: per-step wall time + kernel tags.

        Each step's timing, :meth:`~repro.deploy.plan.Step.describe` line,
        and GEMM kernel tags land in :attr:`last_profile` (one entry per
        top-level plan step, mirroring :func:`plan_summary` order); with
        telemetry enabled a ``plan.step`` span is recorded per step,
        nesting under whatever span the caller holds open (the server's
        ``server.batch``).
        """
        handle = obs.telemetry()
        tracer = handle.tracer if handle is not None else None
        profile: List[Dict[str, object]] = []
        for step in self.plan:
            started = time.perf_counter()
            out = step(out)
            ended = time.perf_counter()
            kernels = step_kernel_tags(step)
            profile.append({
                "step": step.name,
                "describe": step.describe(),
                "kernels": kernels,
                "ms": 1e3 * (ended - started),
                "batch": batch,
            })
            if tracer is not None:
                tracer.record(
                    "plan.step",
                    started,
                    ended,
                    step=step.name,
                    describe=step.describe(),
                    kernels=kernels,
                    batch=batch,
                )
        self.last_profile = profile
        return out

    __call__ = run

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over logits) for a batch."""
        return self.run(x).argmax(axis=-1)

    def evaluate(self, loader: Iterable[Tuple[np.ndarray, np.ndarray]]) -> Dict[str, float]:
        """Accuracy over an iterable of ``(images, labels)`` batches."""
        correct = 0
        total = 0
        for images, labels in loader:
            prediction = self.predict(np.asarray(images))
            correct += int((prediction == np.asarray(labels)).sum())
            total += len(labels)
        return {"accuracy": correct / total if total else float("nan")}
