"""Bit-packing of integer weight codes for the deployment artifact.

A frozen CSQ layer stores signed integer codes ``q`` with
``|q| <= sum_{b in selected} 2**b`` (Eq. 1 with the learned bit mask of
Eq. 4 applied).  The artifact packs them in *offset binary*: codes are
shifted by the layer minimum and written as a little-endian bit stream of
``ceil(log2(q_max - q_min + 1))`` bits per element.

For the common case of a layer whose learned mask selects the ``p`` low bit
planes, ``q`` spans ``[-(2**p - 1), 2**p - 1]`` and the packed width is
exactly ``p + 1`` bits per element — the learned precision plus one sign
bit.  Non-contiguous masks cost the span of the selected planes instead;
both cases are far below the 32 bits of the float checkpoint.  The width is
derived from the *values actually present*, so a layer whose codes collapsed
to a narrow range packs tighter than its nominal precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class PackedCodes:
    """A packed integer tensor: the byte payload plus its decode parameters."""

    data: np.ndarray  #: uint8 bit stream (little-endian within and across bytes)
    bits: int  #: packed width per element; 0 means every element equals ``offset``
    offset: int  #: value subtracted before packing (the tensor minimum)
    count: int  #: number of elements
    shape: Tuple[int, ...]  #: original tensor shape

    @property
    def payload_bits(self) -> int:
        """Exact number of payload bits (before rounding up to whole bytes)."""
        return self.bits * self.count

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


def required_bits(q_min: int, q_max: int) -> int:
    """Packed width for values spanning ``[q_min, q_max]`` (0 for a constant)."""
    span = int(q_max) - int(q_min)
    if span < 0:
        raise ValueError(f"q_max ({q_max}) must be >= q_min ({q_min})")
    return int(span).bit_length()


def pack_codes(q: np.ndarray) -> PackedCodes:
    """Pack an integer tensor into an offset-binary bit stream."""
    q = np.asarray(q)
    if not np.issubdtype(q.dtype, np.integer):
        raise TypeError(f"pack_codes expects an integer array, got dtype {q.dtype}")
    shape = tuple(q.shape)
    flat = q.reshape(-1).astype(np.int64)
    if flat.size == 0:
        return PackedCodes(np.zeros(0, dtype=np.uint8), 0, 0, 0, shape)
    offset = int(flat.min())
    bits = required_bits(offset, int(flat.max()))
    if bits == 0:
        return PackedCodes(np.zeros(0, dtype=np.uint8), 0, offset, flat.size, shape)
    shifted = (flat - offset).astype(np.uint64)
    # (count, bits) bit matrix, LSB first, flattened into one stream.
    planes = ((shifted[:, None] >> np.arange(bits, dtype=np.uint64)) & 1).astype(np.uint8)
    data = np.packbits(planes.reshape(-1), bitorder="little")
    return PackedCodes(data, bits, offset, flat.size, shape)


def unpack_codes(packed: PackedCodes) -> np.ndarray:
    """Exact inverse of :func:`pack_codes`; returns an int32 tensor."""
    if packed.count == 0:
        return np.zeros(packed.shape, dtype=np.int32)
    if packed.bits == 0:
        return np.full(packed.shape, packed.offset, dtype=np.int32)
    flat_bits = np.unpackbits(
        packed.data, count=packed.count * packed.bits, bitorder="little"
    )
    planes = flat_bits.reshape(packed.count, packed.bits).astype(np.int64)
    pow2 = (1 << np.arange(packed.bits, dtype=np.int64))
    values = planes @ pow2 + packed.offset
    return values.astype(np.int32).reshape(packed.shape)
