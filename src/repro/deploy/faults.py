"""Deterministic fault injection for the serving and training tiers
(``REPRO_FAULTS``).

A :class:`FaultPlan` is a seeded, fully reproducible schedule of failures
the :class:`~repro.deploy.server.Server` consults while serving: worker
crashes, slow batches, poisoned executions, and payload bit-flips, each
pinned to a specific *admission index* — the 0-based position of a request
in the order the server admitted it to the queue (cache hits and shed
requests consume no index, so a plan targets exactly the requests that
reach compute).  Every failure path of the resilience layer — restart,
retry, quarantine, shed, deadline expiry — can therefore be exercised by
tests and by ``scripts/loadgen.py --chaos`` with the same failures at the
same requests on every run.

The training tier consumes the same plan with its own index space: for
``preempt`` faults the index is the 0-based *global optimizer step*, and
the consumer is the checkpointing training loop
(:mod:`repro.training.checkpoint`), which dies with
:class:`InjectedPreemption` at the matched step — the seeded stand-in for
a spot-instance preemption or an OOM kill that the resume machinery and
``scripts/train_resume_smoke.py`` recover from.

The plan is either built programmatically (chained registration methods)
or parsed from the ``REPRO_FAULTS`` environment knob, which the server
reads once at :meth:`~repro.deploy.server.Server.start`:

    REPRO_FAULTS="seed=0;crash@2;slow@0:150;poison@5;flip@7" python serve.py

Grammar: ``;``-separated tokens, each ``kind@index[+index...][:param]``
or ``seed=N``.  Kinds:

| token | effect at the matched admission index |
|---|---|
| ``crash@i`` | the worker thread that dequeues request ``i`` dies (``InjectedWorkerCrash``); one-shot, so the requeued request is served by the restarted worker |
| ``slow@i:MS`` | the batch containing request ``i`` sleeps ``MS`` milliseconds before executing (default 25) |
| ``poison@i[:TIMES]`` | executing any batch containing request ``i`` raises ``InjectedPoison``; default ``TIMES=-1`` (every attempt — the request ends quarantined), ``TIMES=1`` fails only the first attempt (the solo retry succeeds) |
| ``flip@i[:BIT]`` | one bit of request ``i``'s payload is flipped at admission (default: a seeded mantissa bit, so the corrupted value stays finite) |
| ``preempt@s`` | the training process dies (``InjectedPreemption``) before executing global optimizer step ``s``; consumed by the training loops, ignored by the server |

Like telemetry, fault injection is **zero-cost when off**: with
``REPRO_FAULTS`` unset and no plan passed, the server holds ``None`` and
every hook site is one ``is not None`` check — served outputs stay bitwise
identical to a build without this module.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Environment knob read by ``Server.start()`` via :meth:`FaultPlan.from_env`.
ENV_KNOB = "REPRO_FAULTS"
_FALSE_VALUES = ("", "0", "false", "off", "no")

#: Default flip bits are drawn from the mantissa (bits 0..22 of a float32)
#: so a corrupted payload stays finite — the corruption is bitwise visible
#: end to end without turning the forward pass into NaN propagation.
_MANTISSA_BITS = 23


class InjectedFault(RuntimeError):
    """Base of every deliberately injected failure (never raised unplanned)."""


class InjectedWorkerCrash(InjectedFault):
    """Kills the serving thread that dequeued the matched request."""


class InjectedPoison(InjectedFault):
    """Fails the batch execution containing the matched request."""


class InjectedPreemption(InjectedFault):
    """Kills a training run before the matched global optimizer step.

    Raised by the checkpointing training loops when the plan marks the
    step; deliberately *not* caught by them, so the process dies exactly
    as a real preemption would — between a completed step and the next
    checkpoint.
    """


class FaultPlan:
    """A seeded, thread-safe schedule of injected failures.

    Registration methods chain (``FaultPlan(seed=0).crash_at(2).slow_at(0,
    ms=150)``) and are keyed by admission index.  The consuming hooks
    (``take_crash``/``take_slow``/``check_poison``/``apply_flip``) are
    called by the server with the admitted request's index; each registered
    fault fires its configured number of ``times`` and is then exhausted.
    ``counts()`` reports how many of each kind actually fired — the chaos
    harness asserts the plan was consumed, not just configured.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        self._next_index = 0
        self._crash: Dict[int, int] = {}
        self._slow: Dict[int, Tuple[float, int]] = {}
        self._poison: Dict[int, int] = {}
        self._flip: Dict[int, int] = {}
        self._preempt: Dict[int, int] = {}
        self._injected: Dict[str, int] = {
            "crash": 0, "slow": 0, "poison": 0, "flip": 0, "preempt": 0,
        }

    # ------------------------------------------------------------------
    # Registration (chainable)
    # ------------------------------------------------------------------
    def crash_at(self, *indices: int, times: int = 1) -> "FaultPlan":
        """Kill the worker that dequeues these admission indices."""
        with self._lock:
            for index in indices:
                self._crash[int(index)] = int(times)
        return self

    def slow_at(self, *indices: int, ms: float = 25.0, times: int = 1) -> "FaultPlan":
        """Stall the batch containing these indices for ``ms`` milliseconds."""
        if ms < 0:
            raise ValueError(f"slow fault needs ms >= 0, got {ms}")
        with self._lock:
            for index in indices:
                self._slow[int(index)] = (float(ms), int(times))
        return self

    def poison_at(self, *indices: int, times: int = -1) -> "FaultPlan":
        """Fail any batch execution containing these indices.

        ``times=-1`` (default) poisons every attempt, so the request is
        retried solo, fails again, and ends quarantined; ``times=1`` fails
        only the first attempt, exercising the retry-success path.
        """
        with self._lock:
            for index in indices:
                self._poison[int(index)] = int(times)
        return self

    def flip_at(self, *indices: int, bit: Optional[int] = None) -> "FaultPlan":
        """Flip one payload bit at admission (seeded mantissa bit by default)."""
        with self._lock:
            for index in indices:
                chosen = int(self._rng.integers(_MANTISSA_BITS)) if bit is None else int(bit)
                if not 0 <= chosen < 32:
                    raise ValueError(f"flip bit must be in [0, 32), got {chosen}")
                self._flip[int(index)] = chosen
        return self

    def preempt_at(self, *steps: int, times: int = 1) -> "FaultPlan":
        """Kill the training process before these global optimizer steps.

        Indices here are training-step indices, not admission indices; the
        consuming hook is :meth:`take_preempt`, called by the checkpointing
        training loops once per step.  One-shot by default so that a
        resumed run that replays the same step numbers is not killed
        again when the plan object is reused in process.
        """
        with self._lock:
            for step in steps:
                self._preempt[int(step)] = int(times)
        return self

    # ------------------------------------------------------------------
    # Consumption (called by the server)
    # ------------------------------------------------------------------
    def next_index(self) -> int:
        """Allot the next admission index (called once per admitted request)."""
        with self._lock:
            index = self._next_index
            self._next_index += 1
            return index

    def _take(self, table: Dict[int, int], index: int) -> bool:
        remaining = table.get(index)
        if remaining is None or remaining == 0:
            return False
        if remaining > 0:
            table[index] = remaining - 1
        return True

    def take_crash(self, index: int) -> bool:
        """Whether the worker dequeuing admission ``index`` should die now."""
        with self._lock:
            if self._take(self._crash, index):
                self._injected["crash"] += 1
                return True
            return False

    def take_preempt(self, step: int) -> bool:
        """Whether the training process should die before global ``step``."""
        with self._lock:
            if self._take(self._preempt, step):
                self._injected["preempt"] += 1
                return True
            return False

    def take_slow(self, indices: Sequence[int]) -> float:
        """Total injected stall (ms) for a batch of admission indices."""
        total = 0.0
        with self._lock:
            for index in indices:
                entry = self._slow.get(index)
                if entry is None:
                    continue
                ms, remaining = entry
                if remaining == 0:
                    continue
                if remaining > 0:
                    self._slow[index] = (ms, remaining - 1)
                self._injected["slow"] += 1
                total += ms
        return total

    def check_poison(self, indices: Sequence[int]) -> None:
        """Raise :class:`InjectedPoison` if the batch holds a poisoned index."""
        with self._lock:
            hit: List[int] = [i for i in indices if self._take(self._poison, i)]
            if hit:
                self._injected["poison"] += len(hit)
        if hit:
            raise InjectedPoison(f"injected poison for request(s) {hit}")

    def apply_flip(self, x: np.ndarray, index: int) -> np.ndarray:
        """Return ``x`` with one bit flipped if ``index`` is marked, else ``x``."""
        with self._lock:
            bit = self._flip.pop(index, None)
            if bit is None:
                return x
            self._injected["flip"] += 1
            element = int(self._rng.integers(x.size))
        corrupted = np.ascontiguousarray(x, dtype=np.float32).copy()
        view = corrupted.reshape(-1).view(np.uint32)
        view[element] ^= np.uint32(1 << bit)
        return corrupted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """How many faults of each kind have actually fired so far."""
        with self._lock:
            return dict(self._injected)

    def admitted(self) -> int:
        """How many admission indices have been allotted so far."""
        with self._lock:
            return self._next_index

    def __repr__(self) -> str:
        with self._lock:
            parts = [f"seed={self.seed}"]
            parts += [f"crash@{i}" for i in sorted(self._crash)]
            parts += [f"slow@{i}:{ms:g}" for i, (ms, _) in sorted(self._slow.items())]
            parts += [f"poison@{i}" for i in sorted(self._poison)]
            parts += [f"flip@{i}:{b}" for i, b in sorted(self._flip.items())]
            parts += [f"preempt@{i}" for i in sorted(self._preempt)]
        return f"FaultPlan({';'.join(parts)})"

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` grammar (see module doc)."""
        tokens = [token.strip() for token in spec.split(";") if token.strip()]
        seed = 0
        for token in tokens:
            if token.startswith("seed="):
                try:
                    seed = int(token[len("seed="):])
                except ValueError as error:
                    raise ValueError(f"REPRO_FAULTS: bad seed in {token!r}") from error
        plan = cls(seed=seed)
        for token in tokens:
            if token.startswith("seed="):
                continue
            if "@" not in token:
                raise ValueError(
                    f"REPRO_FAULTS: token {token!r} is not 'kind@index[:param]' "
                    f"(kinds: crash, slow, poison, flip, preempt) or 'seed=N'"
                )
            kind, _, rest = token.partition("@")
            target, _, param = rest.partition(":")
            try:
                indices = [int(part) for part in target.split("+") if part]
            except ValueError as error:
                raise ValueError(f"REPRO_FAULTS: bad index list in {token!r}") from error
            if not indices:
                raise ValueError(f"REPRO_FAULTS: token {token!r} names no index")
            if kind == "crash":
                plan.crash_at(*indices)
            elif kind == "slow":
                ms = 25.0
                if param:
                    try:
                        ms = float(param[:-2] if param.endswith("ms") else param)
                    except ValueError as error:
                        raise ValueError(f"REPRO_FAULTS: bad ms in {token!r}") from error
                plan.slow_at(*indices, ms=ms)
            elif kind == "poison":
                times = -1
                if param:
                    try:
                        times = int(param)
                    except ValueError as error:
                        raise ValueError(f"REPRO_FAULTS: bad times in {token!r}") from error
                plan.poison_at(*indices, times=times)
            elif kind == "flip":
                bit = None
                if param:
                    try:
                        bit = int(param)
                    except ValueError as error:
                        raise ValueError(f"REPRO_FAULTS: bad bit in {token!r}") from error
                plan.flip_at(*indices, bit=bit)
            elif kind == "preempt":
                times = 1
                if param:
                    try:
                        times = int(param)
                    except ValueError as error:
                        raise ValueError(f"REPRO_FAULTS: bad times in {token!r}") from error
                plan.preempt_at(*indices, times=times)
            else:
                raise ValueError(
                    f"REPRO_FAULTS: unknown fault kind {kind!r} in {token!r} "
                    f"(kinds: crash, slow, poison, flip, preempt)"
                )
        return plan

    @classmethod
    def from_env(cls, environ=os.environ) -> Optional["FaultPlan"]:
        """The plan configured via ``REPRO_FAULTS``, or ``None`` when unset."""
        value = environ.get(ENV_KNOB, "").strip()
        if value.lower() in _FALSE_VALUES:
            return None
        return cls.parse(value)
