"""Scheme-aware export: freezing any trained quantizer into artifact records.

:func:`repro.deploy.save_artifact` historically understood only CSQ models.
This module is the bridge for every quantization scheme the repository
trains — it maps a trained model to the flat
:class:`~repro.csq.convert.QuantizedLayerExport` records the artifact format
serializes, regardless of which wrapper family produced the weights:

* ``csq`` — :class:`~repro.csq.layers._CSQLayerBase` layers (frozen gates),
* ``bsq`` — :class:`~repro.baselines.bsq._BSQLayerBase` layers (STE bit
  planes with the pruned bit mask applied),
* ``uniform_qat`` — ``QConv2d``/``QLinear`` wrappers with
  :class:`~repro.quant.fake_quant.WeightFakeQuantize` (the STE/PACT rows),
* ``dorefa`` — the same wrappers with the DoReFa tanh-normalized grid
  (affine dequantization: code 0 maps to ``-max_abs``),
* ``lqnets`` — the same wrappers with LQ-Nets' learned levels (palette
  dequantization: codes index the sorted level table),
* ``haq_like`` / ``hawq`` — mixed-precision PTQ assignments applied with
  :func:`convert_to_ptq` (per-layer symmetric fake-quant wrappers).

Every exporter replays its scheme's *evaluation* forward operation for
operation on plain NumPy, so the stored codes always reproduce the frozen
eval graph exactly (symmetric/palette schemes) or to float-rounding error
(DoReFa's affine re-association).

This module must not import :mod:`repro.deploy.artifact` — the artifact
module imports it to resolve schemes at save/load time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.baselines.bsq import _BSQLayerBase, BSQConv2d, BSQLinear
from repro.csq.convert import QuantizedLayerExport, export_quantized_layers
from repro.csq.layers import _CSQLayerBase
from repro.nn.module import Module
from repro.quant.act_quant import RANGE_FLOOR, ActivationQuantizer
from repro.quant.dorefa import DoReFaWeightQuantizer
from repro.quant.fake_quant import FakeQuantize, WeightFakeQuantize
from repro.quant.lqnets import LQNetsWeightQuantizer
from repro.quant.pact import PACTActivationQuantizer
from repro.quant.qconv import QConv2d
from repro.quant.qlinear import QLinear

#: Scheme ids the artifact format records and the loader accepts.
KNOWN_SCHEMES = ("csq", "bsq", "uniform_qat", "dorefa", "lqnets", "haq_like", "hawq")


# ---------------------------------------------------------------------------
# Scheme detection
# ---------------------------------------------------------------------------


def detect_scheme(model: Module) -> str:
    """Infer the quantization scheme a trained model carries.

    PTQ models tagged by :func:`convert_to_ptq` win; otherwise the layer
    wrapper family (CSQ, BSQ, QAT) decides, with the QAT weight-quantizer
    type distinguishing ``uniform_qat``/``dorefa``/``lqnets``.
    """
    tagged = getattr(model, "_ptq_scheme", None)
    if tagged is not None:
        return str(tagged)
    for _, module in model.named_modules():
        if isinstance(module, _CSQLayerBase):
            return "csq"
        if isinstance(module, _BSQLayerBase):
            return "bsq"
        if isinstance(module, (QConv2d, QLinear)):
            quantizer = module.weight_quantizer
            if isinstance(quantizer, DoReFaWeightQuantizer):
                return "dorefa"
            if isinstance(quantizer, LQNetsWeightQuantizer):
                return "lqnets"
            if isinstance(quantizer, WeightFakeQuantize):
                return "uniform_qat"
            raise ValueError(
                f"No export scheme for weight quantizer {type(quantizer).__name__!r}"
            )
    raise ValueError(
        "Model carries no recognizable quantization scheme (expected CSQ, BSQ "
        "or QConv2d/QLinear QAT layers)"
    )


# ---------------------------------------------------------------------------
# Activation-quantizer export (shared across schemes)
# ---------------------------------------------------------------------------


def _act_export(module: Optional[Module]) -> Tuple[int, str, Optional[float]]:
    """``(act_bits, act_mode, act_range)`` of one layer's input quantizer."""
    if module is None or isinstance(module, nn.Identity):
        return 32, "observer", None
    if isinstance(module, ActivationQuantizer):
        return module.bits, module.mode, module.frozen_range()
    if isinstance(module, PACTActivationQuantizer):
        # Raw PACT wrapper (the "pact" QAT method): export the raw learned
        # alpha, floored only when degenerate — mirroring
        # ActivationQuantizer.frozen_range.
        alpha = float(module.alpha.data.reshape(-1)[0])
        return module.bits, "pact", (alpha if alpha > 0.0 else RANGE_FLOOR)
    if isinstance(module, FakeQuantize):
        _, upper = module.observer.range()
        return module.bits, "observer", max(float(upper), RANGE_FLOOR)
    raise ValueError(f"No activation exporter for {type(module).__name__!r}")


# ---------------------------------------------------------------------------
# Per-scheme weight freezers
# ---------------------------------------------------------------------------


def _ste_codes(weight: np.ndarray, bits: int):
    """Codes of WeightFakeQuantize's eval forward, operation for operation.

    The training forward multiplies by the *reciprocal* of the scale
    (``ops.fake_quantize``), which differs from dividing by the scale at
    rounding boundaries — the exporter must take the same route or codes
    drift off the trained grid by one level.
    """
    levels = 2 ** bits - 1
    scale = float(np.max(np.abs(weight)))
    if scale == 0.0:
        # The forward returns the (all-zero) weight unchanged.
        return np.zeros(weight.shape, dtype=np.int64), 1.0
    q = np.round(np.clip(weight * (1.0 / scale), -1.0, 1.0) * levels)
    return q.astype(np.int64), scale


def _dorefa_export(weight: np.ndarray, bits: int):
    """Codes + affine dequant spec of DoReFa's tanh-normalized grid."""
    levels = 2 ** bits - 1
    squashed = np.tanh(weight)
    max_abs = float(np.max(np.abs(squashed)))
    if max_abs == 0.0:
        # The forward returns the (all-zero) weight unchanged.
        dequant = {"kind": "affine", "factor": 1.0, "offset": 0.0}
        return np.zeros(weight.shape, dtype=np.int64), 1.0, dequant
    normalized = squashed / (2.0 * max_abs) + 0.5
    q = np.round(normalized * float(levels)).astype(np.int64)
    dequant = {
        "kind": "affine",
        "factor": 2.0 * max_abs / float(levels),
        "offset": -max_abs,
    }
    return q, max_abs, dequant


def _lqnets_export(quantizer: LQNetsWeightQuantizer, weight: np.ndarray):
    """Codes + palette dequant spec of LQ-Nets' learned level table.

    An untrained quantizer (basis never fitted) gets the deterministic QEM
    fit its eval forward would run on first use, so export and eval agree.
    """
    if quantizer._basis is None:
        quantizer._qem_update(weight)
    levels = np.sort(quantizer._codes @ quantizer._basis)
    flat = weight.reshape(-1)
    q = np.abs(flat[:, None] - levels[None, :]).argmin(axis=1)
    q = q.astype(np.int64).reshape(weight.shape)
    dequant = {"kind": "palette", "values": [float(v) for v in levels]}
    return q, float(np.max(np.abs(levels))), dequant


def _bsq_codes(layer: _BSQLayerBase):
    """Frozen integer codes of a BSQ layer (rounded bit planes, mask applied)."""
    planes_p = np.round(np.clip(layer.bits_p.data, 0.0, 1.0))
    planes_n = np.round(np.clip(layer.bits_n.data, 0.0, 1.0))
    diff = planes_p - planes_n
    broadcast = (layer.num_bits,) + (1,) * len(layer.weight_shape)
    weights = (layer._pow2 * layer.bit_mask.data).reshape(broadcast)
    q = (diff * weights).sum(axis=0)
    return q.astype(np.int64), float(layer.scale.data.reshape(-1)[0])


def _conv_config(conv: Module) -> Dict[str, int]:
    return {
        "in_channels": conv.in_channels,
        "out_channels": conv.out_channels,
        "kernel_size": conv.kernel_size,
        "stride": conv.stride,
        "padding": conv.padding,
        "groups": getattr(conv, "groups", 1),
    }


def _export_bsq_layers(model: Module) -> List[QuantizedLayerExport]:
    exports: List[QuantizedLayerExport] = []
    for name, layer in model.named_modules():
        if not isinstance(layer, _BSQLayerBase):
            continue
        q, scale = _bsq_codes(layer)
        if isinstance(layer, BSQConv2d):
            kind, config = "conv2d", _conv_config(layer)
        elif isinstance(layer, BSQLinear):
            kind = "linear"
            config = {"in_features": layer.in_features, "out_features": layer.out_features}
        else:  # pragma: no cover - future BSQ layer kinds must register here
            raise TypeError(f"Layer {name!r} has unsupported BSQ type {type(layer).__name__}")
        act_bits, act_mode, act_range = _act_export(layer.act_quant)
        exports.append(
            QuantizedLayerExport(
                name=name,
                kind=kind,
                q=q,
                scale=scale,
                num_bits=layer.num_bits,
                precision=layer.precision,
                selected_bits=[int(b) for b in layer.bit_mask.data],
                act_bits=act_bits,
                bias=layer.bias.data.copy() if layer.bias is not None else None,
                config=config,
                act_mode=act_mode,
                act_range=act_range,
            )
        )
    if not exports:
        raise ValueError("Model has no BSQ layers to export (run convert_to_bsq first)")
    return exports


def _export_qat_layers(model: Module) -> List[QuantizedLayerExport]:
    exports: List[QuantizedLayerExport] = []
    for name, module in model.named_modules():
        if not isinstance(module, (QConv2d, QLinear)):
            continue
        quantizer = module.weight_quantizer
        bits = getattr(quantizer, "bits", 32)
        if bits >= 32:
            raise ValueError(
                f"Layer {name!r} keeps float weights (bits={bits}); only "
                f"quantized layers can be exported as integer codes"
            )
        weight = module.weight.data
        dequant: Optional[Dict[str, object]] = None
        if isinstance(quantizer, DoReFaWeightQuantizer):
            q, scale, dequant = _dorefa_export(weight, bits)
        elif isinstance(quantizer, LQNetsWeightQuantizer):
            q, scale, dequant = _lqnets_export(quantizer, weight)
        elif isinstance(quantizer, WeightFakeQuantize):
            q, scale = _ste_codes(weight, bits)
        else:
            raise ValueError(
                f"No exporter for weight quantizer {type(quantizer).__name__!r} "
                f"(layer {name!r})"
            )
        if isinstance(module, QConv2d):
            kind, config = "conv2d", _conv_config(module.conv)
        else:
            kind = "linear"
            config = {
                "in_features": module.linear.in_features,
                "out_features": module.linear.out_features,
            }
        act_bits, act_mode, act_range = _act_export(module.activation_quantizer)
        exports.append(
            QuantizedLayerExport(
                name=name,
                kind=kind,
                q=q,
                scale=scale,
                num_bits=bits,
                precision=bits,
                selected_bits=[1] * bits,
                act_bits=act_bits,
                bias=None if module.bias is None else module.bias.data.copy(),
                config=config,
                act_mode=act_mode,
                act_range=act_range,
                dequant=dequant,
            )
        )
    if not exports:
        raise ValueError(
            "Model has no QConv2d/QLinear layers to export (run convert_to_qat "
            "or convert_to_ptq first)"
        )
    return exports


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def export_model_layers(
    model: Module, scheme: Optional[str] = None
) -> Tuple[str, List[QuantizedLayerExport]]:
    """Freeze ``model``'s quantized layers into artifact export records.

    ``scheme`` overrides detection (useful when a wrapper family serves
    several scheme ids, e.g. the PTQ wrappers of ``haq_like`` and ``hawq``);
    by default :func:`detect_scheme` decides.  Returns the resolved scheme
    id and the per-layer records, each stamped with that id.
    """
    if scheme is None:
        scheme = detect_scheme(model)
    if scheme not in KNOWN_SCHEMES:
        raise ValueError(
            f"Unknown quantization scheme {scheme!r}; known schemes: {KNOWN_SCHEMES}"
        )
    if scheme == "csq":
        exports = export_quantized_layers(model)
    elif scheme == "bsq":
        exports = _export_bsq_layers(model)
    else:
        exports = _export_qat_layers(model)
    for export in exports:
        export.scheme = scheme
    return scheme, exports


# ---------------------------------------------------------------------------
# Mixed-precision PTQ conversion (haq_like / hawq serving path)
# ---------------------------------------------------------------------------


def convert_to_ptq(
    model: Module,
    assignment: Dict[str, int],
    act_bits: int = 32,
    scheme: str = "haq_like",
) -> Module:
    """Apply a mixed-precision assignment as post-training quantization.

    ``assignment`` maps layer names (as produced by ``named_modules`` on the
    float model) to weight bit widths — the output of
    :func:`repro.baselines.haq_like.greedy_precision_search` or
    :func:`repro.baselines.hawq.assign_precisions_by_sensitivity`.  Each
    named Conv2d/Linear is wrapped in a QAT wrapper with a symmetric
    per-layer fake-quantizer at its assigned precision, and the model is
    tagged so :func:`detect_scheme` reports ``scheme``.
    """
    if scheme not in ("haq_like", "hawq"):
        raise ValueError(
            f"convert_to_ptq serves the mixed-precision search baselines; "
            f"got scheme {scheme!r} (expected 'haq_like' or 'hawq')"
        )
    if not assignment:
        raise ValueError("convert_to_ptq needs a non-empty precision assignment")
    remaining = dict(assignment)

    def _convert_children(module: Module, prefix: str) -> None:
        for child_name, child in list(module._modules.items()):
            full_name = f"{prefix}.{child_name}" if prefix else child_name
            if isinstance(child, (nn.Conv2d, nn.Linear)) and full_name in remaining:
                bits = int(remaining.pop(full_name))
                activation = (
                    ActivationQuantizer(bits=act_bits, mode="observer")
                    if act_bits < 32
                    else None
                )
                wrapper_cls = QConv2d if isinstance(child, nn.Conv2d) else QLinear
                module.add_module(
                    child_name,
                    wrapper_cls.from_float(child, WeightFakeQuantize(bits=bits), activation),
                )
            else:
                _convert_children(child, full_name)

    _convert_children(model, "")
    if remaining:
        raise ValueError(
            f"Precision assignment names layers missing from the model: "
            f"{sorted(remaining)}"
        )
    model._ptq_scheme = scheme
    return model
