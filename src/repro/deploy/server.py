"""Batched serving engine over one or more :class:`InferenceSession` workers.

A :class:`Server` accepts single-example requests from any number of client
threads and executes them on worker threads with **dynamic micro-batching**:
a worker drains the request queue, waiting up to ``max_wait_ms`` after the
first request to coalesce up to ``max_batch`` examples into one forward pass
— the classic latency/throughput trade the GEMM-heavy runtime rewards, since
a batch-32 forward costs far less than 32 batch-1 forwards.

With ``workers > 1`` the server runs that loop on several threads, each
owning an independent session (via :meth:`InferenceSession.clone`), all
competing over one shared request queue.  Sessions release the GIL inside
their GEMMs, so on multi-core hosts worker batches execute genuinely in
parallel, and even on one core a worker's batching wait window overlaps
another worker's compute instead of stalling the whole server.

An optional LRU response cache short-circuits byte-identical requests, and
the server keeps running statistics in **fixed memory**: request latency,
queue wait, and service time each stream into a log-bucketed
:class:`~repro.obs.metrics.Histogram` (p50/p95/p99 within bucket
resolution), alongside cache hit rate, current queue depth, and the
batch-size distribution — soak runs of millions of requests cost the same
few kilobytes as a smoke test.  With telemetry enabled
(``REPRO_TELEMETRY=1``, see OBSERVABILITY.md) the server additionally
emits one NDJSON record per request — queue wait split from service time —
and a ``server.batch`` span per forward pass, under which a profiling
session nests its per-step ``plan.step`` spans.  The telemetry handle is
resolved once in :meth:`start`; when disabled the only cost is a ``None``
check per batch.

Resilience (see DEPLOYMENT.md "Resilience")
-------------------------------------------

Failure behavior is typed, bounded, and deterministic:

* **Admission control** — ``queue_limit=N`` sheds new work at submit time
  with :class:`ServerOverloaded` once ``N`` requests are pending.  Load is
  rejected at the door, never dropped mid-batch: an admitted request is
  always resolved (result, or a typed error).
* **Deadlines** — ``default_deadline_ms=`` (or per-call
  ``submit(x, deadline_ms=...)``) bounds queue residency.  Workers check
  deadlines at dequeue, so an expired request fails fast with
  :class:`DeadlineExceeded` instead of consuming GEMM time; ``predict``'s
  client timeout doubles as the server-side deadline, closing the
  orphaned-work leak where a timed-out client left its request queued and
  still executed.
* **Crash-safe workers** — a supervisor thread detects a dead serve loop,
  restarts it on a fresh ``session.clone()``, and requeues the batch the
  crash orphaned.  A request whose presence kills two consecutive
  executions is **quarantined**: its future fails with
  :class:`RequestQuarantined` and byte-identical payloads are rejected at
  admission from then on.  Batch failures never take hostages — the batch
  is retried one request at a time so exactly the poison input fails.
* **Graceful drain** — :meth:`drain` closes admissions, flushes every
  queued request through the workers, then joins them; :meth:`stop`
  remains the fast path that fails still-queued requests with
  :class:`ServerStopped`.
* **Deterministic fault injection** — a seeded
  :class:`~repro.deploy.faults.FaultPlan` (``faults=`` or the
  ``REPRO_FAULTS`` env knob) drives every path above reproducibly; with no
  plan configured the hooks are single ``None`` checks and served outputs
  are bitwise identical to a build without them.

Every shed/expiry/restart/retry/quarantine is counted in
:meth:`ServerStats.snapshot` and mirrored to ``server.*`` counters when
telemetry is on.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.deploy.faults import FaultPlan, InjectedWorkerCrash
from repro.deploy.session import InferenceSession
from repro.obs.metrics import Histogram

#: A request that participates in this many consecutive failed executions is
#: quarantined.  Two is the minimum that distinguishes "the batch died around
#: me" (crash, batch-mate poison) from "I kill whatever executes me".
_MAX_ATTEMPTS = 2
#: Bounded LRU of quarantined payload fingerprints (sha1 digests).
_QUARANTINE_CAPACITY = 256
#: How often the supervisor polls worker liveness.
_SUPERVISE_INTERVAL_S = 0.02


class ServerError(RuntimeError):
    """Base of every typed serving failure raised by :class:`Server`."""


class ServerOverloaded(ServerError):
    """Admission rejected: the bounded request queue is full (shed load)."""


class DeadlineExceeded(ServerError):
    """The request's deadline expired while queued; it was never executed."""


class RequestQuarantined(ServerError):
    """The request (or a byte-identical payload) repeatedly killed executions."""


class ServerStopped(ServerError):
    """The server stopped (or is draining) before the request could be served."""


@dataclass
class _Request:
    x: np.ndarray
    future: Future
    enqueued_at: float
    cache_key: Optional[bytes]
    req_id: int = 0
    #: Stamped by the worker that pops the request off the queue; the
    #: queue-wait/service-time split in the stats pivots on this instant.
    dequeued_at: float = 0.0
    #: Absolute perf_counter deadline; 0.0 means none.  Checked at dequeue.
    deadline_at: float = 0.0
    #: Failed executions this request participated in (crash or exception);
    #: at ``_MAX_ATTEMPTS`` the request is quarantined instead of retried.
    attempts: int = 0
    #: Admission index consumed from the :class:`FaultPlan`; -1 without one.
    fault_id: int = -1


@dataclass
class _WorkerSlot:
    """One serving thread and the state its supervisor needs to revive it."""

    index: int
    session: InferenceSession
    thread: Optional[threading.Thread] = None
    generation: int = 0
    #: Requests popped off the queue but not yet resolved: what a crash
    #: orphans, and what :meth:`Server._salvage_crash` requeues.
    inflight: List[_Request] = field(default_factory=list)
    crash_error: Optional[BaseException] = None


class ServerStats:
    """Thread-safe rolling statistics of a running server.

    Latency, queue wait, and service time are streaming histograms —
    memory is fixed regardless of how many requests pass through, and
    snapshots read quantiles from bucket counts instead of sorting a
    sample history.  Queue wait is ``dequeued_at - enqueued_at`` (time
    spent waiting for a worker); service time is everything after the
    pop, including the batch-assembly wait the worker spends coalescing.

    Resilience events are plain counters: ``rejected`` (admission sheds —
    queue overflow or quarantined payload), ``expired`` (deadlines hit at
    dequeue), ``restarts`` (supervisor worker revivals), ``retries``
    (solo re-executions after a batch failure or crash), ``quarantined``
    (requests that exhausted their attempts).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency = Histogram()
        self._queue_wait = Histogram()
        self._service = Histogram()
        self._batch_sizes: Dict[int, int] = {}
        self.requests = 0
        self.served = 0
        self.cache_hits = 0
        self.batches = 0
        self.batched_examples = 0
        self.rejected = 0
        self.expired = 0
        self.restarts = 0
        self.retries = 0
        self.quarantined = 0
        self.started_at = time.perf_counter()
        #: Set by the owning :class:`Server` so snapshots report the live
        #: queue depth; standalone stats objects report 0.
        self.queue_depth_fn: Optional[Callable[[], int]] = None

    def reset(self) -> None:
        """Zero all counters and restart the throughput clock."""
        with self._lock:
            self._latency = Histogram()
            self._queue_wait = Histogram()
            self._service = Histogram()
            self._batch_sizes = {}
            self.requests = 0
            self.served = 0
            self.cache_hits = 0
            self.batches = 0
            self.batched_examples = 0
            self.rejected = 0
            self.expired = 0
            self.restarts = 0
            self.retries = 0
            self.quarantined = 0
            self.started_at = time.perf_counter()

    def record_submit(self, cache_hit: bool) -> int:
        """Count one submitted request; returns its request id (1-based)."""
        with self._lock:
            self.requests += 1
            if cache_hit:
                self.cache_hits += 1
            return self.requests

    def record_rejected(self) -> None:
        """Count one request shed at admission (overload or quarantine)."""
        with self._lock:
            self.rejected += 1

    def record_expired(self) -> None:
        """Count one request dropped at dequeue with an expired deadline."""
        with self._lock:
            self.expired += 1

    def record_restart(self) -> None:
        """Count one supervisor-driven worker restart."""
        with self._lock:
            self.restarts += 1

    def record_retries(self, n: int = 1) -> None:
        """Count requests re-executed solo after a batch failure or crash."""
        with self._lock:
            self.retries += n

    def record_quarantined(self) -> None:
        """Count one request quarantined after exhausting its attempts."""
        with self._lock:
            self.quarantined += 1

    def record_batch(
        self,
        size: int,
        latencies: Sequence[float],
        queue_waits: Sequence[float] = (),
        services: Sequence[float] = (),
    ) -> None:
        with self._lock:
            self.batches += 1
            self.batched_examples += size
            self.served += size
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
        # Histograms carry their own locks; keep the counter lock narrow.
        self._latency.record_many(latencies)
        if queue_waits:
            self._queue_wait.record_many(queue_waits)
        if services:
            self._service.record_many(services)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            elapsed = time.perf_counter() - self.started_at
            snapshot: Dict[str, object] = {
                "requests": float(self.requests),
                "served": float(self.served),
                "cache_hits": float(self.cache_hits),
                "cache_hit_rate": (
                    self.cache_hits / self.requests if self.requests else 0.0
                ),
                "batches": float(self.batches),
                "mean_batch_size": (
                    self.batched_examples / self.batches if self.batches else 0.0
                ),
                "batch_size_dist": dict(sorted(self._batch_sizes.items())),
                "throughput_rps": self.requests / elapsed if elapsed > 0 else 0.0,
                "rejected": float(self.rejected),
                "expired": float(self.expired),
                "restarts": float(self.restarts),
                "retries": float(self.retries),
                "quarantined": float(self.quarantined),
            }
        depth_fn = self.queue_depth_fn
        snapshot["queue_depth"] = float(depth_fn()) if depth_fn is not None else 0.0
        if self._latency.count:
            p50, p95, p99 = self._latency.quantiles([0.50, 0.95, 0.99])
            snapshot["latency_mean_ms"] = 1e3 * self._latency.mean
            snapshot["latency_p50_ms"] = 1e3 * p50
            snapshot["latency_p95_ms"] = 1e3 * p95
            snapshot["latency_p99_ms"] = 1e3 * p99
        if self._queue_wait.count:
            p50, p95, p99 = self._queue_wait.quantiles([0.50, 0.95, 0.99])
            snapshot["queue_wait_p50_ms"] = 1e3 * p50
            snapshot["queue_wait_p95_ms"] = 1e3 * p95
            snapshot["queue_wait_p99_ms"] = 1e3 * p99
        if self._service.count:
            p50, p95, p99 = self._service.quantiles([0.50, 0.95, 0.99])
            snapshot["service_p50_ms"] = 1e3 * p50
            snapshot["service_p95_ms"] = 1e3 * p95
            snapshot["service_p99_ms"] = 1e3 * p99
        return snapshot


class Server:
    """Threaded inference server with dynamic micro-batching and an LRU cache.

    Parameters
    ----------
    session:
        The :class:`InferenceSession` (or any object with a ``run(batch)``)
        executing coalesced batches.
    max_batch:
        Largest number of requests fused into one forward pass.
    max_wait_ms:
        How long a worker waits after the first queued request for more
        requests to coalesce.  0 disables batching delay (latency-optimal);
        a couple of milliseconds already fills batches under load.
    cache_size:
        Number of responses kept in the LRU response cache; 0 disables
        caching.  Keys are the exact request bytes, so only byte-identical
        inputs hit.
    workers:
        Number of serving threads.  Each extra worker executes on its own
        session obtained from ``session.clone()`` (sessions are not
        re-entrant), so the given session must support ``clone()`` when
        ``workers > 1``.
    queue_limit:
        Admission bound: with ``N`` requests already pending, further
        submits raise :class:`ServerOverloaded` instead of growing the
        queue.  ``None`` (default) keeps the queue unbounded — the pre-
        resilience behavior.
    default_deadline_ms:
        Deadline applied to every request that does not carry its own
        ``submit(x, deadline_ms=...)``.  A request still queued when its
        deadline passes fails with :class:`DeadlineExceeded` at dequeue,
        before any compute.  ``None`` (default) means no deadline.
    faults:
        A :class:`~repro.deploy.faults.FaultPlan` of injected failures for
        chaos testing.  ``None`` (default) falls back to the
        ``REPRO_FAULTS`` environment knob (read at :meth:`start`), and with
        that unset too, fault hooks cost one ``None`` check.
    """

    _SHUTDOWN = object()

    def __init__(
        self,
        session: InferenceSession,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        cache_size: int = 0,
        workers: int = 1,
        queue_limit: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and not callable(getattr(session, "clone", None)):
            raise ValueError(
                "workers > 1 needs one session per worker: the given session "
                "does not provide clone()"
            )
        if queue_limit is not None and queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        self.session = session
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self.workers = workers
        self.queue_limit = queue_limit
        self.default_deadline_ms = default_deadline_ms
        self.stats = ServerStats()
        self._queue: "Queue[object]" = Queue()
        self.stats.queue_depth_fn = self._queue.qsize
        self._cache: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._cache_size = cache_size
        self._cache_lock = threading.Lock()
        # Guards the running/accepting flags together with queue puts, so a
        # submit that passed the admission checks cannot enqueue after stop()
        # has drained, and qsize-vs-limit is checked atomically with the put.
        self._lifecycle_lock = threading.Lock()
        self._slots: List[_WorkerSlot] = []
        self._sessions: List[InferenceSession] = [session]
        self._running = False
        self._accepting = True
        self._telemetry: Optional[obs.Telemetry] = None
        self._counters: Optional[Dict[str, obs.Counter]] = None
        self._faults_config = faults
        self._faults: Optional[FaultPlan] = None
        self._quarantined: "OrderedDict[bytes, bool]" = OrderedDict()
        self._quarantine_lock = threading.Lock()
        self._supervisor: Optional[threading.Thread] = None
        self._supervisor_stop: Optional[threading.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Server":
        with self._lifecycle_lock:
            if self._running:
                return self
            self._running = True
            self._accepting = True
        # Telemetry state is sampled once per serving session: zero-cost
        # (one None check per batch) when disabled, and a scope entered
        # before start() governs the whole run.
        self._telemetry = obs.telemetry()
        if self._telemetry is not None:
            registry = self._telemetry.registry
            self._counters = {
                "rejected": registry.counter("server.rejected"),
                "expired": registry.counter("server.expired"),
                "restarts": registry.counter("server.restarts"),
                "retries": registry.counter("server.retries"),
                "quarantined": registry.counter("server.quarantined"),
            }
        else:
            self._counters = None
        # Same resolve-once contract for fault injection: an explicit plan
        # wins, else the REPRO_FAULTS knob, else None (every hook disarmed).
        self._faults = (
            self._faults_config if self._faults_config is not None
            else FaultPlan.from_env()
        )
        # Sessions are built once and survive stop()/start() cycles.
        while len(self._sessions) < self.workers:
            self._sessions.append(self.session.clone())
        self._slots = [
            _WorkerSlot(index=index, session=worker_session)
            for index, worker_session in enumerate(self._sessions)
        ]
        # Stats cover the current serving session: without the reset, a
        # restarted (or late-started) server reports throughput averaged
        # over time it was not running.
        self.stats.reset()
        for slot in self._slots:
            slot.thread = threading.Thread(
                target=self._worker_main,
                args=(slot,),
                name=f"repro-server-{slot.index}",
                daemon=True,
            )
            slot.thread.start()
        self._supervisor_stop = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-server-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        with self._lifecycle_lock:
            if not self._running:
                return
            self._running = False
            for _ in self._slots:
                self._queue.put(self._SHUTDOWN)
        if self._supervisor_stop is not None:
            self._supervisor_stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
            self._supervisor = None
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=timeout)
                slot.thread = None
        # Fail any request the workers never reached (queued behind the
        # shutdown sentinels, or submitted in the stop race window) instead
        # of leaving its future pending forever.
        while True:
            try:
                item = self._queue.get_nowait()
            except Empty:
                break
            self._task_done()
            if isinstance(item, _Request):
                self._fail(
                    item,
                    ServerStopped("Server stopped before the request was served"),
                )
        telemetry = self._telemetry
        if telemetry is not None and telemetry.sink is not None:
            telemetry.sink.flush()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: close admissions, flush queued work, then stop.

        New submits fail with :class:`ServerStopped` immediately; every
        already-admitted request is served (or resolved with its typed
        error) before the workers are joined.  Returns ``True`` on a
        complete drain.  With ``timeout`` seconds elapsed first it returns
        ``False`` — admissions stay closed and in-flight work keeps
        running, so the caller can retry the drain or force :meth:`stop`.
        """
        with self._lifecycle_lock:
            if not self._running:
                return True
            self._accepting = False
        deadline = None if timeout is None else time.perf_counter() + timeout
        # Queue task accounting: every admitted request (and sentinel) is
        # matched by exactly one task_done when resolved, and crash salvage
        # requeues *before* its task_done — so unfinished_tasks reaching 0
        # means every admitted request's future is resolved.
        while self._queue.unfinished_tasks:
            if deadline is not None and time.perf_counter() >= deadline:
                return False
            time.sleep(1e-3)
        self.stop()
        return True

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline_ms: Optional[float] = None
    ) -> "Future[np.ndarray]":
        """Enqueue one example (no batch dimension); returns a Future of logits.

        ``deadline_ms`` bounds how long the request may wait in queue
        (default: the server's ``default_deadline_ms``); past it the future
        fails with :class:`DeadlineExceeded` without consuming compute.
        Raises :class:`ServerOverloaded` when admission control sheds the
        request and :class:`RequestQuarantined` when the payload is
        byte-identical to a quarantined one.
        """
        # Checked again under the lifecycle lock before enqueueing; this early
        # check also keeps the cache-hit fast path honest about a dead server.
        if not self._running:
            raise ServerError("Server is not running; call start() first")
        x = np.ascontiguousarray(x, dtype=np.float32)
        future: "Future[np.ndarray]" = Future()
        key = self._key_for(x)
        if key is not None:
            cached = self._cache_get(key)
            if cached is not None:
                req_id = self.stats.record_submit(cache_hit=True)
                future.set_result(cached.copy())
                telemetry = self._telemetry
                # Record dicts are only worth building when a sink will
                # actually write them; spans are unaffected (kept in the
                # tracer ring for in-process inspection either way).
                if telemetry is not None and telemetry.sink is not None:
                    telemetry.emit({
                        "type": "request",
                        "id": req_id,
                        "cache_hit": True,
                        "queue_wait_ms": 0.0,
                        "service_ms": 0.0,
                        "latency_ms": 0.0,
                        "batch": 0,
                        "shape": list(x.shape),
                    })
                return future
        # Empty quarantine set (the overwhelmingly common case) costs one
        # truthiness check; only a server that has actually quarantined
        # something pays the fingerprint here.
        if self._quarantined:
            with self._quarantine_lock:
                is_quarantined = self._fingerprint(x) in self._quarantined
            if is_quarantined:
                self._record_rejected()
                raise RequestQuarantined(
                    "Request payload is byte-identical to a quarantined input "
                    "(it previously failed "
                    f"{_MAX_ATTEMPTS} consecutive executions)"
                )
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        elif deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        request = _Request(
            x=x, future=future, enqueued_at=time.perf_counter(), cache_key=key
        )
        if deadline_ms is not None:
            request.deadline_at = request.enqueued_at + deadline_ms / 1e3
        with self._lifecycle_lock:
            if not self._running:
                raise ServerError("Server is not running; call start() first")
            if not self._accepting:
                raise ServerStopped("Server is draining; not accepting new requests")
            if (
                self.queue_limit is not None
                and self._queue.qsize() >= self.queue_limit
            ):
                self._record_rejected()
                raise ServerOverloaded(
                    f"Request queue is full ({self.queue_limit} pending); "
                    f"shed at admission"
                )
            faults = self._faults
            if faults is not None:
                # Fault indices are *admission order*: only requests that
                # make it past shedding (and the cache) consume one, so a
                # plan targets the same requests regardless of load.
                request.fault_id = faults.next_index()
                flipped = faults.apply_flip(request.x, request.fault_id)
                if flipped is not request.x:
                    request.x = flipped
                    request.cache_key = None  # never cache a corrupted payload
            request.req_id = self.stats.record_submit(cache_hit=False)
            self._queue.put(request)
        return future

    def predict(
        self,
        x: np.ndarray,
        timeout: Optional[float] = 30.0,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Blocking single-example inference.

        The client timeout doubles as the server-side deadline (unless
        ``deadline_ms`` overrides it), so a request its caller has given up
        on is dropped at dequeue instead of executing into the void.
        """
        if deadline_ms is None and timeout is not None:
            deadline_ms = timeout * 1e3
        return self.submit(x, deadline_ms=deadline_ms).result(timeout=timeout)

    def predict_many(
        self, xs: Sequence[np.ndarray], timeout: Optional[float] = 30.0
    ) -> List[np.ndarray]:
        """Submit many examples concurrently and gather their results."""
        deadline_ms = None if timeout is None else timeout * 1e3
        futures = [self.submit(x, deadline_ms=deadline_ms) for x in xs]
        return [f.result(timeout=timeout) for f in futures]

    def clear_cache(self) -> None:
        """Drop every cached response (the load generator's cold phases)."""
        with self._cache_lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_main(self, slot: _WorkerSlot) -> None:
        try:
            self._serve_loop(slot)
        except BaseException as error:
            # A crashed worker must never hang its waiters: requeue or fail
            # everything it had popped, then die and let the supervisor
            # restart a replacement on a fresh session.
            self._salvage_crash(slot, error)

    def _serve_loop(self, slot: _WorkerSlot) -> None:
        session = slot.session
        faults = self._faults
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except Empty:
                if not self._running:
                    return
                continue
            if first is self._SHUTDOWN:
                self._task_done()
                return
            if self._expire_if_due(first):
                self._task_done()
                continue
            first.dequeued_at = time.perf_counter()
            slot.inflight.append(first)
            batch: List[_Request] = [first]
            deadline = first.dequeued_at + self.max_wait_s
            drained_sentinel = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                try:
                    item = self._queue.get(block=remaining > 0, timeout=max(remaining, 1e-4))
                except Empty:
                    break
                if item is self._SHUTDOWN:
                    # Keep the sentinel count balanced for the other workers:
                    # finish this batch, then exit.
                    self._task_done()
                    drained_sentinel = True
                    break
                if self._expire_if_due(item):
                    self._task_done()
                    continue
                item.dequeued_at = time.perf_counter()
                slot.inflight.append(item)
                batch.append(item)
            if faults is not None:
                for request in batch:
                    if request.fault_id >= 0 and faults.take_crash(request.fault_id):
                        raise InjectedWorkerCrash(
                            f"injected worker crash at request {request.fault_id}"
                        )
            self._execute(batch, session)
            slot.inflight.clear()
            for _ in batch:
                self._task_done()
            if drained_sentinel:
                return

    def _salvage_crash(self, slot: _WorkerSlot, error: BaseException) -> None:
        slot.crash_error = error
        pending = list(slot.inflight)
        slot.inflight.clear()
        for request in pending:
            request.attempts += 1
            if request.attempts >= _MAX_ATTEMPTS:
                self._quarantine(request, error)
            elif not self._running:
                self._fail(
                    request,
                    ServerStopped("Server stopped before the request was served"),
                )
            else:
                self.stats.record_retries(1)
                counters = self._counters
                if counters is not None:
                    counters["retries"].inc()
                # Requeue strictly before task_done so drain()'s
                # unfinished_tasks count never transiently hits zero while
                # this request is still owed a result.
                self._queue.put(request)
            self._task_done()

    def _supervise(self) -> None:
        stop_event = self._supervisor_stop
        assert stop_event is not None
        while not stop_event.wait(_SUPERVISE_INTERVAL_S):
            for slot in self._slots:
                thread = slot.thread
                if thread is None or thread.is_alive():
                    continue
                if not self._running:
                    return
                # A serve loop only returns when the server is stopping, so
                # a dead thread on a running server means it crashed.
                self._restart_worker(slot, thread)

    def _restart_worker(self, slot: _WorkerSlot, dead_thread: threading.Thread) -> None:
        with self._lifecycle_lock:
            if not self._running or slot.thread is not dead_thread:
                return
            error = slot.crash_error
            slot.crash_error = None
            # The crashed session's reused buffers may hold a half-written
            # batch; restart on a fresh clone (kept for later start() cycles
            # too).  A duck-typed session without clone() is reused as-is.
            clone = getattr(self.session, "clone", None)
            if callable(clone):
                slot.session = clone()
                self._sessions[slot.index] = slot.session
            slot.generation += 1
            slot.thread = threading.Thread(
                target=self._worker_main,
                args=(slot,),
                name=f"repro-server-{slot.index}g{slot.generation}",
                daemon=True,
            )
            slot.thread.start()
        self.stats.record_restart()
        counters = self._counters
        if counters is not None:
            counters["restarts"].inc()
        telemetry = self._telemetry
        if telemetry is not None and telemetry.sink is not None:
            telemetry.emit({
                "type": "worker_restart",
                "worker": slot.index,
                "generation": slot.generation,
                "error": repr(error) if error is not None else None,
            })

    def _expire_if_due(self, request: _Request) -> bool:
        """Drop a dequeued request whose deadline already passed (no compute)."""
        if not request.deadline_at or time.perf_counter() < request.deadline_at:
            return False
        self.stats.record_expired()
        counters = self._counters
        if counters is not None:
            counters["expired"].inc()
        waited_ms = 1e3 * (time.perf_counter() - request.enqueued_at)
        self._fail(
            request,
            DeadlineExceeded(
                f"request {request.req_id} exceeded its deadline after "
                f"{waited_ms:.1f} ms in queue; dropped before execution"
            ),
        )
        return True

    def _execute(self, batch: List[_Request], session: Optional[InferenceSession] = None) -> None:
        session = session if session is not None else self.session
        if len(batch) > 1 and len({request.x.shape for request in batch}) > 1:
            # A malformed request must not poison its batch-mates: mixed
            # shapes cannot be stacked, so serve each request individually
            # and let only the offender fail.
            for request in batch:
                self._execute([request], session)
            return
        telemetry = self._telemetry
        run_started = time.perf_counter()
        try:
            faults = self._faults
            if faults is not None:
                fault_ids = [r.fault_id for r in batch if r.fault_id >= 0]
                stall_ms = faults.take_slow(fault_ids)
                if stall_ms > 0:
                    time.sleep(stall_ms / 1e3)
                faults.check_poison(fault_ids)
            stacked = np.stack([request.x for request in batch])
            if telemetry is not None:
                # The batch span parents any plan.step spans a profiling
                # session records from this worker thread.
                with telemetry.tracer.span("server.batch", size=len(batch)):
                    logits = session.run(stacked)
            else:
                logits = session.run(stacked)
        except Exception as error:
            # One failure must cost one future, not the whole batch: retry
            # the members individually so exactly the poison request fails
            # (and, on its second strike, is quarantined).
            self._fail_or_retry(batch, error, session)
            return
        done = time.perf_counter()
        latencies = [done - request.enqueued_at for request in batch]
        queue_waits = [request.dequeued_at - request.enqueued_at for request in batch]
        services = [done - request.dequeued_at for request in batch]
        for request, row in zip(batch, logits):
            # Copy the row out of the batch array: a view would pin the whole
            # batch in the cache, and callers must own their result.
            result = row.copy()
            if request.cache_key is not None:
                self._cache_put(request.cache_key, result.copy())
            try:
                request.future.set_result(result)
            except InvalidStateError:
                pass  # the client cancelled; the result has no taker
        self.stats.record_batch(len(batch), latencies, queue_waits, services)
        # Sink-gated like the cache-hit path: no sink, no record dicts.
        if telemetry is not None and telemetry.sink is not None:
            size = len(batch)
            batch_shape = list(batch[0].x.shape)
            for index, request in enumerate(batch):
                telemetry.emit({
                    "type": "request",
                    "id": request.req_id,
                    "cache_hit": False,
                    "queue_wait_ms": 1e3 * queue_waits[index],
                    "service_ms": 1e3 * services[index],
                    "latency_ms": 1e3 * latencies[index],
                    "batch": size,
                    "shape": batch_shape,
                })
            telemetry.emit({
                "type": "batch",
                "size": size,
                "assembly_ms": 1e3 * (run_started - batch[0].dequeued_at),
                "run_ms": 1e3 * (done - run_started),
            })

    def _fail_or_retry(
        self, batch: List[_Request], error: Exception, session: InferenceSession
    ) -> None:
        retry: List[_Request] = []
        for request in batch:
            request.attempts += 1
            if request.attempts >= _MAX_ATTEMPTS:
                self._quarantine(request, error)
            else:
                retry.append(request)
        if not retry:
            return
        self.stats.record_retries(len(retry))
        counters = self._counters
        if counters is not None:
            counters["retries"].inc(len(retry))
        for request in retry:
            self._execute([request], session)

    def _quarantine(self, request: _Request, error: BaseException) -> None:
        fingerprint = self._fingerprint(request.x)
        with self._quarantine_lock:
            self._quarantined[fingerprint] = True
            self._quarantined.move_to_end(fingerprint)
            while len(self._quarantined) > _QUARANTINE_CAPACITY:
                self._quarantined.popitem(last=False)
        self.stats.record_quarantined()
        counters = self._counters
        if counters is not None:
            counters["quarantined"].inc()
        telemetry = self._telemetry
        if telemetry is not None and telemetry.sink is not None:
            telemetry.emit({
                "type": "quarantine",
                "id": request.req_id,
                "attempts": request.attempts,
                "error": repr(error),
            })
        failure = RequestQuarantined(
            f"request {request.req_id} failed {request.attempts} consecutive "
            f"executions and its payload was quarantined: {error}"
        )
        failure.__cause__ = error
        self._fail(request, failure)

    def _record_rejected(self) -> None:
        self.stats.record_rejected()
        counters = self._counters
        if counters is not None:
            counters["rejected"].inc()

    def _fail(self, request: _Request, error: BaseException) -> None:
        try:
            request.future.set_exception(error)
        except InvalidStateError:
            pass  # the client cancelled first

    def _task_done(self) -> None:
        try:
            self._queue.task_done()
        except ValueError:
            pass  # more task_dones than puts can only happen on teardown races

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _fingerprint(self, x: np.ndarray) -> bytes:
        digest = hashlib.sha1(x.tobytes())
        digest.update(repr(x.shape).encode())
        return digest.digest()

    def _key_for(self, x: np.ndarray) -> Optional[bytes]:
        if self._cache_size <= 0:
            return None
        return self._fingerprint(x)

    def _cache_get(self, key: bytes) -> Optional[np.ndarray]:
        with self._cache_lock:
            value = self._cache.get(key)
            if value is not None:
                self._cache.move_to_end(key)
            return value

    def _cache_put(self, key: bytes, value: np.ndarray) -> None:
        with self._cache_lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
