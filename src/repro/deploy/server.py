"""Batched serving engine over one or more :class:`InferenceSession` workers.

A :class:`Server` accepts single-example requests from any number of client
threads and executes them on worker threads with **dynamic micro-batching**:
a worker drains the request queue, waiting up to ``max_wait_ms`` after the
first request to coalesce up to ``max_batch`` examples into one forward pass
— the classic latency/throughput trade the GEMM-heavy runtime rewards, since
a batch-32 forward costs far less than 32 batch-1 forwards.

With ``workers > 1`` the server runs that loop on several threads, each
owning an independent session (via :meth:`InferenceSession.clone`), all
competing over one shared request queue.  Sessions release the GIL inside
their GEMMs, so on multi-core hosts worker batches execute genuinely in
parallel, and even on one core a worker's batching wait window overlaps
another worker's compute instead of stalling the whole server.

An optional LRU response cache short-circuits byte-identical requests, and
the server keeps running latency/throughput statistics (mean/p50/p95 request
latency, mean batch size, cache hit rate) for the serving benchmarks.
"""

from __future__ import annotations

import hashlib
import statistics
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass
from queue import Empty, Queue
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.deploy.session import InferenceSession


@dataclass
class _Request:
    x: np.ndarray
    future: Future
    enqueued_at: float
    cache_key: Optional[bytes]


class ServerStats:
    """Thread-safe rolling statistics of a running server."""

    def __init__(self, latency_window: int = 8192) -> None:
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=latency_window)
        self.requests = 0
        self.served = 0
        self.cache_hits = 0
        self.batches = 0
        self.batched_examples = 0
        self.started_at = time.perf_counter()

    def reset(self) -> None:
        """Zero all counters and restart the throughput clock."""
        with self._lock:
            self._latencies.clear()
            self.requests = 0
            self.served = 0
            self.cache_hits = 0
            self.batches = 0
            self.batched_examples = 0
            self.started_at = time.perf_counter()

    def record_submit(self, cache_hit: bool) -> None:
        with self._lock:
            self.requests += 1
            if cache_hit:
                self.cache_hits += 1

    def record_batch(self, size: int, latencies: Sequence[float]) -> None:
        with self._lock:
            self.batches += 1
            self.batched_examples += size
            self.served += size
            self._latencies.extend(latencies)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            latencies = sorted(self._latencies)
            elapsed = time.perf_counter() - self.started_at
            snapshot: Dict[str, float] = {
                "requests": float(self.requests),
                "served": float(self.served),
                "cache_hits": float(self.cache_hits),
                "batches": float(self.batches),
                "mean_batch_size": (
                    self.batched_examples / self.batches if self.batches else 0.0
                ),
                "throughput_rps": self.requests / elapsed if elapsed > 0 else 0.0,
            }
            if latencies:
                snapshot["latency_mean_ms"] = 1e3 * statistics.fmean(latencies)
                snapshot["latency_p50_ms"] = 1e3 * latencies[len(latencies) // 2]
                snapshot["latency_p95_ms"] = 1e3 * latencies[int(0.95 * (len(latencies) - 1))]
            return snapshot


class Server:
    """Threaded inference server with dynamic micro-batching and an LRU cache.

    Parameters
    ----------
    session:
        The :class:`InferenceSession` (or any object with a ``run(batch)``)
        executing coalesced batches.
    max_batch:
        Largest number of requests fused into one forward pass.
    max_wait_ms:
        How long a worker waits after the first queued request for more
        requests to coalesce.  0 disables batching delay (latency-optimal);
        a couple of milliseconds already fills batches under load.
    cache_size:
        Number of responses kept in the LRU response cache; 0 disables
        caching.  Keys are the exact request bytes, so only byte-identical
        inputs hit.
    workers:
        Number of serving threads.  Each extra worker executes on its own
        session obtained from ``session.clone()`` (sessions are not
        re-entrant), so the given session must support ``clone()`` when
        ``workers > 1``.
    """

    _SHUTDOWN = object()

    def __init__(
        self,
        session: InferenceSession,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        cache_size: int = 0,
        workers: int = 1,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and not callable(getattr(session, "clone", None)):
            raise ValueError(
                "workers > 1 needs one session per worker: the given session "
                "does not provide clone()"
            )
        self.session = session
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self.workers = workers
        self.stats = ServerStats()
        self._queue: "Queue[object]" = Queue()
        self._cache: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._cache_size = cache_size
        self._cache_lock = threading.Lock()
        # Guards the running flag together with queue puts, so a submit that
        # passed the running check cannot enqueue after stop() has drained.
        self._lifecycle_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._sessions: List[InferenceSession] = [session]
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Server":
        with self._lifecycle_lock:
            if self._running:
                return self
            self._running = True
        # Sessions are built once and survive stop()/start() cycles.
        while len(self._sessions) < self.workers:
            self._sessions.append(self.session.clone())
        # Stats cover the current serving session: without the reset, a
        # restarted (or late-started) server reports throughput averaged
        # over time it was not running.
        self.stats.reset()
        self._threads = [
            threading.Thread(
                target=self._serve_loop,
                args=(worker_session,),
                name=f"repro-server-{index}",
                daemon=True,
            )
            for index, worker_session in enumerate(self._sessions)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        with self._lifecycle_lock:
            if not self._running:
                return
            self._running = False
            for _ in self._threads:
                self._queue.put(self._SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        # Fail any request the workers never reached (queued behind the
        # shutdown sentinels, or submitted in the stop race window) instead
        # of leaving its future pending forever.
        while True:
            try:
                item = self._queue.get_nowait()
            except Empty:
                break
            if isinstance(item, _Request):
                item.future.set_exception(
                    RuntimeError("Server stopped before the request was served")
                )

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one example (no batch dimension); returns a Future of logits."""
        # Checked again under the lifecycle lock before enqueueing; this early
        # check also keeps the cache-hit fast path honest about a dead server.
        if not self._running:
            raise RuntimeError("Server is not running; call start() first")
        x = np.ascontiguousarray(x, dtype=np.float32)
        future: "Future[np.ndarray]" = Future()
        key = self._key_for(x)
        if key is not None:
            cached = self._cache_get(key)
            if cached is not None:
                self.stats.record_submit(cache_hit=True)
                future.set_result(cached.copy())
                return future
        request = _Request(x=x, future=future, enqueued_at=time.perf_counter(), cache_key=key)
        with self._lifecycle_lock:
            if not self._running:
                raise RuntimeError("Server is not running; call start() first")
            self.stats.record_submit(cache_hit=False)
            self._queue.put(request)
        return future

    def predict(self, x: np.ndarray, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Blocking single-example inference."""
        return self.submit(x).result(timeout=timeout)

    def predict_many(
        self, xs: Sequence[np.ndarray], timeout: Optional[float] = 30.0
    ) -> List[np.ndarray]:
        """Submit many examples concurrently and gather their results."""
        futures = [self.submit(x) for x in xs]
        return [f.result(timeout=timeout) for f in futures]

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _serve_loop(self, session: InferenceSession) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except Empty:
                if not self._running:
                    return
                continue
            if first is self._SHUTDOWN:
                return
            batch: List[_Request] = [first]
            deadline = time.perf_counter() + self.max_wait_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                try:
                    item = self._queue.get(block=remaining > 0, timeout=max(remaining, 1e-4))
                except Empty:
                    break
                if item is self._SHUTDOWN:
                    # Keep the sentinel count balanced for the other workers.
                    self._execute(batch, session)
                    return
                batch.append(item)
            self._execute(batch, session)

    def _execute(self, batch: List[_Request], session: Optional[InferenceSession] = None) -> None:
        session = session if session is not None else self.session
        if len(batch) > 1 and len({request.x.shape for request in batch}) > 1:
            # A malformed request must not poison its batch-mates: mixed
            # shapes cannot be stacked, so serve each request individually
            # and let only the offender fail.
            for request in batch:
                self._execute([request], session)
            return
        try:
            stacked = np.stack([request.x for request in batch])
            logits = session.run(stacked)
        except Exception as error:  # surface runtime failures to every waiter
            for request in batch:
                request.future.set_exception(error)
            return
        done = time.perf_counter()
        latencies = [done - request.enqueued_at for request in batch]
        for request, row in zip(batch, logits):
            # Copy the row out of the batch array: a view would pin the whole
            # batch in the cache, and callers must own their result.
            result = row.copy()
            if request.cache_key is not None:
                self._cache_put(request.cache_key, result.copy())
            request.future.set_result(result)
        self.stats.record_batch(len(batch), latencies)

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _key_for(self, x: np.ndarray) -> Optional[bytes]:
        if self._cache_size <= 0:
            return None
        digest = hashlib.sha1(x.tobytes())
        digest.update(repr(x.shape).encode())
        return digest.digest()

    def _cache_get(self, key: bytes) -> Optional[np.ndarray]:
        with self._cache_lock:
            value = self._cache.get(key)
            if value is not None:
                self._cache.move_to_end(key)
            return value

    def _cache_put(self, key: bytes, value: np.ndarray) -> None:
        with self._cache_lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
