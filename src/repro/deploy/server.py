"""Batched serving engine over one or more :class:`InferenceSession` workers.

A :class:`Server` accepts single-example requests from any number of client
threads and executes them on worker threads with **dynamic micro-batching**:
a worker drains the request queue, waiting up to ``max_wait_ms`` after the
first request to coalesce up to ``max_batch`` examples into one forward pass
— the classic latency/throughput trade the GEMM-heavy runtime rewards, since
a batch-32 forward costs far less than 32 batch-1 forwards.

With ``workers > 1`` the server runs that loop on several threads, each
owning an independent session (via :meth:`InferenceSession.clone`), all
competing over one shared request queue.  Sessions release the GIL inside
their GEMMs, so on multi-core hosts worker batches execute genuinely in
parallel, and even on one core a worker's batching wait window overlaps
another worker's compute instead of stalling the whole server.

An optional LRU response cache short-circuits byte-identical requests, and
the server keeps running statistics in **fixed memory**: request latency,
queue wait, and service time each stream into a log-bucketed
:class:`~repro.obs.metrics.Histogram` (p50/p95/p99 within bucket
resolution), alongside cache hit rate, current queue depth, and the
batch-size distribution — soak runs of millions of requests cost the same
few kilobytes as a smoke test.  With telemetry enabled
(``REPRO_TELEMETRY=1``, see OBSERVABILITY.md) the server additionally
emits one NDJSON record per request — queue wait split from service time —
and a ``server.batch`` span per forward pass, under which a profiling
session nests its per-step ``plan.step`` spans.  The telemetry handle is
resolved once in :meth:`start`; when disabled the only cost is a ``None``
check per batch.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from queue import Empty, Queue
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.deploy.session import InferenceSession
from repro.obs.metrics import Histogram


@dataclass
class _Request:
    x: np.ndarray
    future: Future
    enqueued_at: float
    cache_key: Optional[bytes]
    req_id: int = 0
    #: Stamped by the worker that pops the request off the queue; the
    #: queue-wait/service-time split in the stats pivots on this instant.
    dequeued_at: float = 0.0


class ServerStats:
    """Thread-safe rolling statistics of a running server.

    Latency, queue wait, and service time are streaming histograms —
    memory is fixed regardless of how many requests pass through, and
    snapshots read quantiles from bucket counts instead of sorting a
    sample history.  Queue wait is ``dequeued_at - enqueued_at`` (time
    spent waiting for a worker); service time is everything after the
    pop, including the batch-assembly wait the worker spends coalescing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency = Histogram()
        self._queue_wait = Histogram()
        self._service = Histogram()
        self._batch_sizes: Dict[int, int] = {}
        self.requests = 0
        self.served = 0
        self.cache_hits = 0
        self.batches = 0
        self.batched_examples = 0
        self.started_at = time.perf_counter()
        #: Set by the owning :class:`Server` so snapshots report the live
        #: queue depth; standalone stats objects report 0.
        self.queue_depth_fn: Optional[Callable[[], int]] = None

    def reset(self) -> None:
        """Zero all counters and restart the throughput clock."""
        with self._lock:
            self._latency = Histogram()
            self._queue_wait = Histogram()
            self._service = Histogram()
            self._batch_sizes = {}
            self.requests = 0
            self.served = 0
            self.cache_hits = 0
            self.batches = 0
            self.batched_examples = 0
            self.started_at = time.perf_counter()

    def record_submit(self, cache_hit: bool) -> int:
        """Count one submitted request; returns its request id (1-based)."""
        with self._lock:
            self.requests += 1
            if cache_hit:
                self.cache_hits += 1
            return self.requests

    def record_batch(
        self,
        size: int,
        latencies: Sequence[float],
        queue_waits: Sequence[float] = (),
        services: Sequence[float] = (),
    ) -> None:
        with self._lock:
            self.batches += 1
            self.batched_examples += size
            self.served += size
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
        # Histograms carry their own locks; keep the counter lock narrow.
        self._latency.record_many(latencies)
        if queue_waits:
            self._queue_wait.record_many(queue_waits)
        if services:
            self._service.record_many(services)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            elapsed = time.perf_counter() - self.started_at
            snapshot: Dict[str, object] = {
                "requests": float(self.requests),
                "served": float(self.served),
                "cache_hits": float(self.cache_hits),
                "cache_hit_rate": (
                    self.cache_hits / self.requests if self.requests else 0.0
                ),
                "batches": float(self.batches),
                "mean_batch_size": (
                    self.batched_examples / self.batches if self.batches else 0.0
                ),
                "batch_size_dist": dict(sorted(self._batch_sizes.items())),
                "throughput_rps": self.requests / elapsed if elapsed > 0 else 0.0,
            }
        depth_fn = self.queue_depth_fn
        snapshot["queue_depth"] = float(depth_fn()) if depth_fn is not None else 0.0
        if self._latency.count:
            p50, p95, p99 = self._latency.quantiles([0.50, 0.95, 0.99])
            snapshot["latency_mean_ms"] = 1e3 * self._latency.mean
            snapshot["latency_p50_ms"] = 1e3 * p50
            snapshot["latency_p95_ms"] = 1e3 * p95
            snapshot["latency_p99_ms"] = 1e3 * p99
        if self._queue_wait.count:
            p50, p95, p99 = self._queue_wait.quantiles([0.50, 0.95, 0.99])
            snapshot["queue_wait_p50_ms"] = 1e3 * p50
            snapshot["queue_wait_p95_ms"] = 1e3 * p95
            snapshot["queue_wait_p99_ms"] = 1e3 * p99
        if self._service.count:
            p50, p95, p99 = self._service.quantiles([0.50, 0.95, 0.99])
            snapshot["service_p50_ms"] = 1e3 * p50
            snapshot["service_p95_ms"] = 1e3 * p95
            snapshot["service_p99_ms"] = 1e3 * p99
        return snapshot


class Server:
    """Threaded inference server with dynamic micro-batching and an LRU cache.

    Parameters
    ----------
    session:
        The :class:`InferenceSession` (or any object with a ``run(batch)``)
        executing coalesced batches.
    max_batch:
        Largest number of requests fused into one forward pass.
    max_wait_ms:
        How long a worker waits after the first queued request for more
        requests to coalesce.  0 disables batching delay (latency-optimal);
        a couple of milliseconds already fills batches under load.
    cache_size:
        Number of responses kept in the LRU response cache; 0 disables
        caching.  Keys are the exact request bytes, so only byte-identical
        inputs hit.
    workers:
        Number of serving threads.  Each extra worker executes on its own
        session obtained from ``session.clone()`` (sessions are not
        re-entrant), so the given session must support ``clone()`` when
        ``workers > 1``.
    """

    _SHUTDOWN = object()

    def __init__(
        self,
        session: InferenceSession,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        cache_size: int = 0,
        workers: int = 1,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and not callable(getattr(session, "clone", None)):
            raise ValueError(
                "workers > 1 needs one session per worker: the given session "
                "does not provide clone()"
            )
        self.session = session
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1e3
        self.workers = workers
        self.stats = ServerStats()
        self._queue: "Queue[object]" = Queue()
        self.stats.queue_depth_fn = self._queue.qsize
        self._cache: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._cache_size = cache_size
        self._cache_lock = threading.Lock()
        # Guards the running flag together with queue puts, so a submit that
        # passed the running check cannot enqueue after stop() has drained.
        self._lifecycle_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._sessions: List[InferenceSession] = [session]
        self._running = False
        self._telemetry: Optional[obs.Telemetry] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Server":
        with self._lifecycle_lock:
            if self._running:
                return self
            self._running = True
        # Telemetry state is sampled once per serving session: zero-cost
        # (one None check per batch) when disabled, and a scope entered
        # before start() governs the whole run.
        self._telemetry = obs.telemetry()
        # Sessions are built once and survive stop()/start() cycles.
        while len(self._sessions) < self.workers:
            self._sessions.append(self.session.clone())
        # Stats cover the current serving session: without the reset, a
        # restarted (or late-started) server reports throughput averaged
        # over time it was not running.
        self.stats.reset()
        self._threads = [
            threading.Thread(
                target=self._serve_loop,
                args=(worker_session,),
                name=f"repro-server-{index}",
                daemon=True,
            )
            for index, worker_session in enumerate(self._sessions)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        with self._lifecycle_lock:
            if not self._running:
                return
            self._running = False
            for _ in self._threads:
                self._queue.put(self._SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        # Fail any request the workers never reached (queued behind the
        # shutdown sentinels, or submitted in the stop race window) instead
        # of leaving its future pending forever.
        while True:
            try:
                item = self._queue.get_nowait()
            except Empty:
                break
            if isinstance(item, _Request):
                item.future.set_exception(
                    RuntimeError("Server stopped before the request was served")
                )
        telemetry = self._telemetry
        if telemetry is not None and telemetry.sink is not None:
            telemetry.sink.flush()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one example (no batch dimension); returns a Future of logits."""
        # Checked again under the lifecycle lock before enqueueing; this early
        # check also keeps the cache-hit fast path honest about a dead server.
        if not self._running:
            raise RuntimeError("Server is not running; call start() first")
        x = np.ascontiguousarray(x, dtype=np.float32)
        future: "Future[np.ndarray]" = Future()
        key = self._key_for(x)
        if key is not None:
            cached = self._cache_get(key)
            if cached is not None:
                req_id = self.stats.record_submit(cache_hit=True)
                future.set_result(cached.copy())
                telemetry = self._telemetry
                # Record dicts are only worth building when a sink will
                # actually write them; spans are unaffected (kept in the
                # tracer ring for in-process inspection either way).
                if telemetry is not None and telemetry.sink is not None:
                    telemetry.emit({
                        "type": "request",
                        "id": req_id,
                        "cache_hit": True,
                        "queue_wait_ms": 0.0,
                        "service_ms": 0.0,
                        "latency_ms": 0.0,
                        "batch": 0,
                        "shape": list(x.shape),
                    })
                return future
        request = _Request(x=x, future=future, enqueued_at=time.perf_counter(), cache_key=key)
        with self._lifecycle_lock:
            if not self._running:
                raise RuntimeError("Server is not running; call start() first")
            request.req_id = self.stats.record_submit(cache_hit=False)
            self._queue.put(request)
        return future

    def predict(self, x: np.ndarray, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Blocking single-example inference."""
        return self.submit(x).result(timeout=timeout)

    def predict_many(
        self, xs: Sequence[np.ndarray], timeout: Optional[float] = 30.0
    ) -> List[np.ndarray]:
        """Submit many examples concurrently and gather their results."""
        futures = [self.submit(x) for x in xs]
        return [f.result(timeout=timeout) for f in futures]

    def clear_cache(self) -> None:
        """Drop every cached response (the load generator's cold phases)."""
        with self._cache_lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _serve_loop(self, session: InferenceSession) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except Empty:
                if not self._running:
                    return
                continue
            if first is self._SHUTDOWN:
                return
            first.dequeued_at = time.perf_counter()
            batch: List[_Request] = [first]
            deadline = first.dequeued_at + self.max_wait_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                try:
                    item = self._queue.get(block=remaining > 0, timeout=max(remaining, 1e-4))
                except Empty:
                    break
                if item is self._SHUTDOWN:
                    # Keep the sentinel count balanced for the other workers.
                    self._execute(batch, session)
                    return
                item.dequeued_at = time.perf_counter()
                batch.append(item)
            self._execute(batch, session)

    def _execute(self, batch: List[_Request], session: Optional[InferenceSession] = None) -> None:
        session = session if session is not None else self.session
        if len(batch) > 1 and len({request.x.shape for request in batch}) > 1:
            # A malformed request must not poison its batch-mates: mixed
            # shapes cannot be stacked, so serve each request individually
            # and let only the offender fail.
            for request in batch:
                self._execute([request], session)
            return
        telemetry = self._telemetry
        run_started = time.perf_counter()
        try:
            stacked = np.stack([request.x for request in batch])
            if telemetry is not None:
                # The batch span parents any plan.step spans a profiling
                # session records from this worker thread.
                with telemetry.tracer.span("server.batch", size=len(batch)):
                    logits = session.run(stacked)
            else:
                logits = session.run(stacked)
        except Exception as error:  # surface runtime failures to every waiter
            for request in batch:
                request.future.set_exception(error)
            return
        done = time.perf_counter()
        latencies = [done - request.enqueued_at for request in batch]
        queue_waits = [request.dequeued_at - request.enqueued_at for request in batch]
        services = [done - request.dequeued_at for request in batch]
        for request, row in zip(batch, logits):
            # Copy the row out of the batch array: a view would pin the whole
            # batch in the cache, and callers must own their result.
            result = row.copy()
            if request.cache_key is not None:
                self._cache_put(request.cache_key, result.copy())
            request.future.set_result(result)
        self.stats.record_batch(len(batch), latencies, queue_waits, services)
        # Sink-gated like the cache-hit path: no sink, no record dicts.
        if telemetry is not None and telemetry.sink is not None:
            size = len(batch)
            batch_shape = list(batch[0].x.shape)
            for index, request in enumerate(batch):
                telemetry.emit({
                    "type": "request",
                    "id": request.req_id,
                    "cache_hit": False,
                    "queue_wait_ms": 1e3 * queue_waits[index],
                    "service_ms": 1e3 * services[index],
                    "latency_ms": 1e3 * latencies[index],
                    "batch": size,
                    "shape": batch_shape,
                })
            telemetry.emit({
                "type": "batch",
                "size": size,
                "assembly_ms": 1e3 * (run_started - batch[0].dequeued_at),
                "run_ms": 1e3 * (done - run_started),
            })

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _key_for(self, x: np.ndarray) -> Optional[bytes]:
        if self._cache_size <= 0:
            return None
        digest = hashlib.sha1(x.tobytes())
        digest.update(repr(x.shape).encode())
        return digest.digest()

    def _cache_get(self, key: bytes) -> Optional[np.ndarray]:
        with self._cache_lock:
            value = self._cache.get(key)
            if value is not None:
                self._cache.move_to_end(key)
            return value

    def _cache_put(self, key: bytes, value: np.ndarray) -> None:
        with self._cache_lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
