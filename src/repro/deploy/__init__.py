"""Deployment subsystem: artifacts, integer inference runtime, serving.

The training side of the repo ends at a frozen CSQ model; this package is
the serving side:

* :mod:`repro.deploy.packing` — offset-binary bit packing of integer codes,
* :mod:`repro.deploy.artifact` — ``save_artifact`` / ``load_artifact``: one
  ``.npz`` file with bit-packed weight codes at each layer's *learned*
  precision, per-layer scales, BatchNorm state and a JSON manifest,
* :mod:`repro.deploy.plan` — compiles a model skeleton into a flat list of
  fused NumPy steps (conv+BN+ReLU as one GEMM + affine; activation-quantized
  layers additionally snap their input onto the frozen integer grid, making
  the GEMM integer-code × integer-code),
* :mod:`repro.deploy.session` — :class:`InferenceSession`, the autograd-free
  runtime executing a plan (integer activations compiled automatically when
  the manifest carries frozen clip ranges),
* :mod:`repro.deploy.server` — :class:`Server`, a threaded serving engine
  with dynamic micro-batching, an LRU response cache and latency stats.

See DEPLOYMENT.md for the format specification and design notes.
"""

from repro.deploy.packing import PackedCodes, pack_codes, unpack_codes
from repro.deploy.export import (
    KNOWN_SCHEMES,
    convert_to_ptq,
    detect_scheme,
    export_model_layers,
)
from repro.deploy.artifact import (
    Artifact,
    ArtifactCorrupt,
    ArtifactError,
    QuantizedTensorRecord,
    UnknownSchemeError,
    load_artifact,
    save_artifact,
)
from repro.deploy.faults import (
    FaultPlan,
    InjectedFault,
    InjectedPoison,
    InjectedPreemption,
    InjectedWorkerCrash,
)
from repro.deploy.plan import (
    ActQuantSpec,
    PlanError,
    compile_plan,
    plan_summary,
    register_plan_handler,
)
from repro.deploy.session import InferenceSession
from repro.deploy.server import (
    DeadlineExceeded,
    RequestQuarantined,
    Server,
    ServerError,
    ServerOverloaded,
    ServerStats,
    ServerStopped,
)

__all__ = [
    "PackedCodes",
    "pack_codes",
    "unpack_codes",
    "Artifact",
    "ArtifactCorrupt",
    "ArtifactError",
    "QuantizedTensorRecord",
    "UnknownSchemeError",
    "KNOWN_SCHEMES",
    "convert_to_ptq",
    "detect_scheme",
    "export_model_layers",
    "save_artifact",
    "load_artifact",
    "ActQuantSpec",
    "PlanError",
    "compile_plan",
    "plan_summary",
    "register_plan_handler",
    "FaultPlan",
    "InjectedFault",
    "InjectedPoison",
    "InjectedPreemption",
    "InjectedWorkerCrash",
    "InferenceSession",
    "Server",
    "ServerError",
    "ServerOverloaded",
    "DeadlineExceeded",
    "RequestQuarantined",
    "ServerStopped",
    "ServerStats",
]
