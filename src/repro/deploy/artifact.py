"""Packed mixed-precision model artifacts (save/load).

An artifact is one ``.npz`` file holding a frozen quantized model (CSQ or
any baseline scheme — see :mod:`repro.deploy.export`) in deployable form:

* ``manifest`` — a JSON document (stored as a uint8 array) with the format
  version, the framework version, the architecture registry id and kwargs,
  the quantization scheme id, the per-layer precision map and dequant
  specs, and the decode parameters of every packed tensor;
* ``q::{layer}`` — bit-packed integer weight codes at the layer's *learned*
  precision (see :mod:`repro.deploy.packing`): a 3-bit layer costs ~3 bits
  per element on disk instead of 32;
* ``bias::{layer}`` — float32 bias of a quantized layer, when present;
* ``floats`` — every remaining float parameter/buffer (BatchNorm scales,
  shifts and running statistics) concatenated into one dense float32 blob;
  per-tensor names/shapes/offsets live in the manifest.  One blob instead
  of one zip member per tensor keeps container overhead from dominating
  small artifacts (deep models carry 3–4 tiny arrays per BN layer).

``load_artifact`` restores an :class:`Artifact` without touching any
training machinery; ``Artifact.build_model`` reconstructs the equivalent
plain float model through the model registry (the fallback path and the
structural skeleton the inference runtime compiles its layer plan from).
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

import repro
from repro import obs
from repro.csq.precision import scheme_from_precision_map
from repro.deploy.export import KNOWN_SCHEMES, export_model_layers
from repro.models.registry import create_model, has_model
from repro.nn.module import Module
from repro.quant.functional import dequantize_with_spec
from repro.quant.scheme import QuantizationScheme
from repro.utils.integrity import atomic_write_bytes, checksum_blobs, corrupt_blobs
from repro.deploy.packing import PackedCodes, pack_codes, unpack_codes

#: Version written by :func:`save_artifact`.  History:
#:
#: * **1** — packed weight codes, per-layer ``act_bits`` (informational only;
#:   the runtime executed activations in float32),
#: * **2** — adds per-layer frozen activation-quantization parameters
#:   (``act_mode``, ``act_range``) so the runtime can serve ``act_bits < 32``
#:   models on the integer activation grid they trained with,
#: * **3** — adds the manifest ``scheme`` id and per-layer ``dequant`` specs
#:   so non-CSQ quantizers (DoReFa's affine grid, LQ-Nets' palette, the STE
#:   baselines, BSQ, mixed-precision PTQ) serve with the dequantization
#:   semantics they trained with.
FORMAT_VERSION = 3
#: Versions :func:`load_artifact` accepts.  Version-1 artifacts carry no
#: activation ranges and load with float activation semantics; version-2
#: artifacts carry no scheme id and load as CSQ (symmetric dequantization).
SUPPORTED_VERSIONS = (1, 2, 3)
_MANIFEST_KEY = "manifest"
_FLOATS_KEY = "floats"
_CODES_PREFIX = "q::"
_BIAS_PREFIX = "bias::"


class ArtifactError(ValueError):
    """Raised when an artifact file is malformed or incompatible."""


class ArtifactCorrupt(ArtifactError):
    """Raised when a stored blob fails its manifest CRC32 integrity check."""


class UnknownSchemeError(ArtifactError):
    """Raised when an artifact names a quantization scheme this build lacks.

    The message names the offending scheme id so operators can tell a
    version skew (artifact from a newer build) from a corrupt manifest.
    """


@dataclass
class QuantizedTensorRecord:
    """One quantized layer restored from an artifact (codes already unpacked)."""

    name: str
    kind: str  #: ``"conv2d"`` or ``"linear"``
    q: np.ndarray  #: int32 codes, weight-shaped
    scale: float
    num_bits: int
    precision: int
    selected_bits: List[int]
    act_bits: int
    config: Dict[str, int]
    bias: Optional[np.ndarray] = None
    packed_bits: int = 0  #: packed width per element this layer used on disk
    act_mode: str = "observer"  #: activation clip convention (``observer``/``pact``)
    act_range: Optional[float] = None  #: frozen activation clip range; None = float
    #: The on-disk packed payload, kept after unpacking so the bit-plane
    #: GEMM kernel can slice weight planes straight out of the bit stream
    #: (``repro.runtime.intgemm.bitplanes_from_payload``) without a
    #: pack → unpack → repack round trip.  ``None`` for in-memory records.
    packed: Optional[PackedCodes] = None
    scheme: str = "csq"  #: quantization scheme id that produced the codes
    #: Dequantization spec for non-symmetric schemes (see
    #: :func:`repro.quant.functional.dequantize_with_spec`); ``None`` keeps
    #: the symmetric linear contract.
    dequant: Optional[Dict[str, object]] = None

    @property
    def dequant_kind(self) -> str:
        """``"symmetric"``, ``"affine"`` or ``"palette"``."""
        return str((self.dequant or {}).get("kind", "symmetric"))

    @property
    def dequant_factor(self) -> float:
        """Scalar mapping codes to float weights: ``w = q * dequant_factor``.

        Only meaningful for symmetric-dequant records — the plan compiler
        folds this factor into the output affine, which an affine offset or
        a palette table cannot express.
        """
        return self.scale / float(2 ** self.num_bits - 1)

    @property
    def dequantized_weight(self) -> np.ndarray:
        return dequantize_with_spec(self.q, self.scale, self.num_bits, self.dequant)


@dataclass
class Artifact:
    """An in-memory deployment artifact."""

    manifest: Dict[str, object]
    quantized: Dict[str, QuantizedTensorRecord]
    floats: Dict[str, np.ndarray]
    file_bytes: int = 0  #: on-disk size; 0 when built in memory

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def arch(self) -> str:
        return str(self.manifest["arch"])

    @property
    def arch_kwargs(self) -> Dict[str, object]:
        return dict(self.manifest.get("arch_kwargs", {}))

    @property
    def precision_map(self) -> Dict[str, int]:
        return {name: rec.precision for name, rec in self.quantized.items()}

    @property
    def scheme_id(self) -> str:
        """Quantization scheme the codes were frozen from (``"csq"``, ...).

        Pre-version-3 artifacts carry no scheme field and are CSQ by
        construction — that was the only scheme the exporter knew.
        """
        return str(self.manifest.get("scheme", "csq"))

    def scheme(self) -> QuantizationScheme:
        """Size accounting of the stored scheme (the paper's Comp(×) rows)."""
        sizes = {name: int(rec.q.size) for name, rec in self.quantized.items()}
        bits = {name: float(rec.precision) for name, rec in self.quantized.items()}
        return scheme_from_precision_map(sizes, bits)

    def packed_payload_bits(self) -> int:
        """Exact bits spent on weight codes (excludes manifest/bias/BN)."""
        return sum(rec.packed_bits * rec.q.size for rec in self.quantized.values())

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def build_model(self) -> Module:
        """Reconstruct the equivalent plain float model (registry skeleton).

        Quantized layers get their dequantized weights, everything else gets
        the stored float tensors.  The model is returned in eval mode — this
        is the serving-side fallback that runs through the ordinary autograd
        stack, and the structure the inference runtime compiles from.
        """
        if not has_model(self.arch):
            raise ArtifactError(
                f"Artifact references unknown architecture {self.arch!r}; "
                f"it must be registered with repro.models.register_model first"
            )
        model = create_model(self.arch, **self.arch_kwargs)
        modules = dict(model.named_modules())
        for name, record in self.quantized.items():
            layer = modules.get(name)
            if layer is None:
                raise ArtifactError(
                    f"Artifact layer {name!r} does not exist in architecture {self.arch!r}"
                )
            if layer.weight.data.shape != record.q.shape:
                raise ArtifactError(
                    f"Artifact layer {name!r} shape {record.q.shape} does not match "
                    f"the architecture's {layer.weight.data.shape}; check arch_kwargs"
                )
            layer.weight.data = record.dequantized_weight
            if record.bias is not None:
                layer.bias.data = record.bias.astype(np.float32).copy()
        own: Dict[str, np.ndarray] = {}
        for name, param in model.named_parameters():
            own[name] = param
        for name, buf in model.named_buffers():
            own[name] = buf
        for name, value in self.floats.items():
            target = own.get(name)
            if target is None:
                # State the float model has no slot for (e.g. activation
                # observer statistics) is carried for completeness only.
                continue
            target.data = np.asarray(value, dtype=target.data.dtype).copy()
        model.eval()
        return model


def save_artifact(
    model: Module,
    path: str,
    arch: str,
    arch_kwargs: Optional[Dict[str, object]] = None,
    metadata: Optional[Dict[str, object]] = None,
    scheme: Optional[str] = None,
) -> Artifact:
    """Serialize a frozen quantized model to a single packed ``.npz`` artifact.

    Parameters
    ----------
    model:
        A quantized model: CSQ (``convert_to_csq``, typically after
        ``freeze_model``; extraction uses hard gates either way), BSQ
        (``convert_to_bsq``), a QAT model (``convert_to_qat`` with any
        method) or a mixed-precision PTQ model (``convert_to_ptq``).
    path:
        Output file path (conventionally ``*.npz``).
    arch:
        Model registry id (e.g. ``"resnet20"``) used to rebuild the skeleton
        at load time.
    arch_kwargs:
        Keyword arguments the architecture was created with (``num_classes``,
        ``width_mult``, ...).  Must reproduce the exact layer shapes.
    metadata:
        Optional free-form JSON-serializable dict stored in the manifest.
    scheme:
        Quantization scheme id to export as; ``None`` auto-detects from the
        model's wrapper family (see :func:`repro.deploy.export.detect_scheme`).

    Returns the in-memory :class:`Artifact` (with ``file_bytes`` filled in).
    """
    arch_kwargs = dict(arch_kwargs or {})
    if not has_model(arch):
        raise ArtifactError(f"Unknown architecture id {arch!r}; register it before saving")
    scheme_id, exports = export_model_layers(model, scheme)
    quantized_names = {e.name for e in exports}

    arrays: Dict[str, np.ndarray] = {}
    layer_entries: List[Dict[str, object]] = []
    records: Dict[str, QuantizedTensorRecord] = {}
    for export in exports:
        packed = pack_codes(export.q)
        arrays[_CODES_PREFIX + export.name] = packed.data
        if export.bias is not None:
            arrays[_BIAS_PREFIX + export.name] = export.bias.astype(np.float32)
        layer_entries.append(
            {
                "name": export.name,
                "kind": export.kind,
                "shape": list(export.q.shape),
                "scale": float(export.scale),
                "num_bits": int(export.num_bits),
                "precision": int(export.precision),
                "selected_bits": export.selected_bits,
                "act_bits": int(export.act_bits),
                "act_mode": export.act_mode,
                "act_range": None if export.act_range is None else float(export.act_range),
                "config": export.config,
                "has_bias": export.bias is not None,
                "pack": {"bits": packed.bits, "offset": packed.offset, "count": packed.count},
                "dequant": export.dequant,
            }
        )
        records[export.name] = QuantizedTensorRecord(
            name=export.name,
            kind=export.kind,
            q=export.q.astype(np.int32),
            scale=float(export.scale),
            num_bits=int(export.num_bits),
            precision=int(export.precision),
            selected_bits=export.selected_bits,
            act_bits=int(export.act_bits),
            config=export.config,
            bias=None if export.bias is None else export.bias.astype(np.float32),
            packed_bits=packed.bits,
            act_mode=export.act_mode,
            act_range=None if export.act_range is None else float(export.act_range),
            packed=packed,
            scheme=scheme_id,
            dequant=export.dequant,
        )

    # Everything that is not quantizer state rides along as dense float:
    # BatchNorm affine parameters and running statistics, plus any stray
    # parameters of unconverted layers.  All of it is concatenated into one
    # blob; the manifest records each tensor's name/shape/offset.  Any state
    # living *under* a quantized layer (CSQ gates and bit planes, QAT
    # wrapper children, activation-observer statistics) is already frozen
    # into the exported codes/ranges and is skipped wholesale.
    floats: Dict[str, np.ndarray] = {}
    float_index: List[Dict[str, object]] = []
    offset = 0
    for name, value in model.state_dict().items():
        if any(name == q or name.startswith(f"{q}.") for q in quantized_names):
            continue
        tensor = np.asarray(value, dtype=np.float32)
        floats[name] = tensor
        float_index.append({"name": name, "shape": list(tensor.shape), "offset": offset})
        offset += tensor.size
    arrays[_FLOATS_KEY] = (
        np.concatenate([floats[str(e["name"])].reshape(-1) for e in float_index])
        if float_index
        else np.zeros(0, dtype=np.float32)
    )

    scheme = scheme_from_precision_map(
        {e.name: int(e.q.size) for e in exports},
        {e.name: float(e.precision) for e in exports},
    )
    manifest: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "framework_version": repro.__version__,
        "arch": arch,
        "arch_kwargs": arch_kwargs,
        "scheme": scheme_id,
        "layers": layer_entries,
        "float_tensors": float_index,
        "average_precision": scheme.average_precision,
        "compression_ratio": scheme.compression_ratio,
        "metadata": dict(metadata or {}),
        # Per-blob CRC32 of every non-manifest member, bound to the manifest
        # itself: unlike the zip container's per-member CRCs this detects a
        # member swapped between (otherwise valid) archives, and it survives
        # repacking.  An additive key — version-1/2 readers ignore it, and
        # load_artifact treats its absence as "legacy, unverified".  The
        # scheme is shared with training checkpoints (repro.utils.integrity).
        "checksums": checksum_blobs(arrays),
    }
    arrays[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )

    # np.savez writes an uncompressed zip: the file size reflects the true
    # packed payload (plus zip/npy headers), not a codec's opinion of it.
    # The write is atomic (temp file → fsync → replace) so a crash mid-save
    # never leaves a torn artifact behind.
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    atomic_write_bytes(path, payload)

    return Artifact(
        manifest=manifest,
        quantized=records,
        floats=floats,
        file_bytes=len(payload),
    )


def load_artifact(path: str) -> Artifact:
    """Load an artifact saved by :func:`save_artifact` (codes unpacked once)."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    file_bytes = os.path.getsize(path)
    with np.load(path, allow_pickle=False) as archive:
        if _MANIFEST_KEY not in archive:
            raise ArtifactError(f"{path} is not a repro deployment artifact (no manifest)")
        manifest = json.loads(bytes(archive[_MANIFEST_KEY]).decode("utf-8"))
        version = manifest.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise ArtifactError(
                f"Artifact format version {version!r} is not supported "
                f"(this build reads versions {SUPPORTED_VERSIONS})"
            )
        # Pre-version-3 artifacts carry no scheme id; they were always CSQ.
        scheme_id = str(manifest.get("scheme", "csq"))
        if scheme_id not in KNOWN_SCHEMES:
            raise UnknownSchemeError(
                f"Artifact {path} uses unknown quantization scheme "
                f"{scheme_id!r}; this build serves {KNOWN_SCHEMES}"
            )
        checksums = manifest.get("checksums")
        if checksums is None:
            # Artifacts written before checksums existed still load; the gap
            # in integrity coverage is surfaced, not silently accepted.
            handle = obs.telemetry()
            if handle is not None:
                handle.warn(
                    "artifact manifest carries no checksums; "
                    "blob integrity not verified",
                    path=path,
                )
        else:
            corrupt = corrupt_blobs(archive, checksums)
            if corrupt:
                raise ArtifactCorrupt(
                    f"Artifact {path} failed its integrity check: stored "
                    f"blob(s) {corrupt} do not match the manifest CRC32 "
                    f"checksums — the file is corrupt or was tampered with"
                )
        quantized: Dict[str, QuantizedTensorRecord] = {}
        for entry in manifest["layers"]:
            name = entry["name"]
            pack = entry["pack"]
            packed = PackedCodes(
                data=archive[_CODES_PREFIX + name],
                bits=int(pack["bits"]),
                offset=int(pack["offset"]),
                count=int(pack["count"]),
                shape=tuple(entry["shape"]),
            )
            bias_key = _BIAS_PREFIX + name
            # Version-1 entries carry no activation range: act_range stays
            # None and the session falls back to float activation semantics.
            act_range = entry.get("act_range")
            quantized[name] = QuantizedTensorRecord(
                name=name,
                kind=entry["kind"],
                q=unpack_codes(packed),
                scale=float(entry["scale"]),
                num_bits=int(entry["num_bits"]),
                precision=int(entry["precision"]),
                selected_bits=[int(b) for b in entry["selected_bits"]],
                act_bits=int(entry.get("act_bits", 32)),
                config={k: int(v) for k, v in entry["config"].items()},
                bias=archive[bias_key].copy() if bias_key in archive else None,
                packed_bits=int(pack["bits"]),
                act_mode=str(entry.get("act_mode", "observer")),
                act_range=None if act_range is None else float(act_range),
                packed=packed,
                scheme=scheme_id,
                dequant=entry.get("dequant"),
            )
        blob = archive[_FLOATS_KEY] if _FLOATS_KEY in archive else np.zeros(0, dtype=np.float32)
        floats = {}
        for entry in manifest.get("float_tensors", []):
            shape = tuple(int(s) for s in entry["shape"])
            start = int(entry["offset"])
            count = int(np.prod(shape)) if shape else 1
            floats[str(entry["name"])] = blob[start:start + count].reshape(shape).copy()
    return Artifact(
        manifest=manifest, quantized=quantized, floats=floats, file_bytes=file_bytes
    )
